package progen

import (
	"fmt"
	"math/rand"

	"treegion/internal/ir"
)

// Program is a generated synthetic benchmark: a named set of functions.
type Program struct {
	Name  string
	Funcs []*ir.Function
	// Preset the program was generated from (carried for profiling knobs).
	Preset Preset
}

// Generate builds the synthetic program for a preset. Generation is fully
// deterministic in the preset's seed.
func Generate(p Preset) (*Program, error) {
	if p.Call != nil {
		return generateCalls(p)
	}
	prog := &Program{Name: p.Name, Preset: p}
	rng := rand.New(rand.NewSource(int64(p.Seed)))
	for i := 0; i < p.NumFuncs; i++ {
		scale := 0.5 + rng.Float64() // 0.5x .. 1.5x
		budget := int(float64(p.OpsPerFunc) * scale)
		fn := genFunction(fmt.Sprintf("%s_f%d", p.Name, i), p, budget, rng)
		if err := fn.Validate(); err != nil {
			return nil, fmt.Errorf("progen: generated invalid function: %w", err)
		}
		prog.Funcs = append(prog.Funcs, fn)
	}
	return prog, nil
}

// GenerateAll builds the full eight-benchmark suite.
func GenerateAll() ([]*Program, error) {
	var out []*Program
	for _, p := range Presets() {
		prog, err := Generate(p)
		if err != nil {
			return nil, err
		}
		out = append(out, prog)
	}
	return out, nil
}

// gen carries generation state for one function.
type gen struct {
	f      *ir.Function
	p      Preset
	rng    *rand.Rand
	pool   []ir.Reg // live integer values to draw operands from
	recent []ir.Reg // most recent definitions, newest last
	fpool  []ir.Reg // live fp values
	bases  []ir.Reg // address base registers
	last   ir.Reg   // most recently defined integer register
	budget int      // remaining computational-op budget
}

func genFunction(name string, p Preset, budget int, rng *rand.Rand) *ir.Function {
	f := ir.NewFunction(name)
	g := &gen{f: f, p: p, rng: rng, budget: budget}
	entry := f.NewBlock()

	// Seed the operand pools so every generated op has real data sources.
	for i := 0; i < 4; i++ {
		r := f.NewReg(ir.ClassGPR)
		f.EmitMovI(entry, r, int64(64+i*512))
		g.bases = append(g.bases, r)
	}
	for i := 0; i < 8; i++ {
		r := f.NewReg(ir.ClassGPR)
		if i%2 == 0 {
			f.EmitLd(entry, r, g.bases[i%len(g.bases)], int64(8*i))
		} else {
			f.EmitMovI(entry, r, int64(rng.Intn(1000)))
		}
		g.pool = append(g.pool, r)
		g.last = r
	}
	for i := 0; i < 3; i++ {
		r := f.NewReg(ir.ClassFPR)
		f.EmitMovI(entry, r, int64(i+1))
		g.fpool = append(g.fpool, r)
	}

	cur := g.genSeq(entry, 0)
	g.f.EmitRet(cur)
	return f
}

// genSeq emits a run of structures starting in cur and returns the block
// where control continues. At the top level it keeps generating until the
// function's op budget is spent; nested sequences stay short.
func (g *gen) genSeq(cur *ir.Block, depth int) *ir.Block {
	n := 1 + g.rng.Intn(4)
	for i := 0; (depth == 0 || i < n) && g.budget > 0; i++ {
		cur = g.genStruct(cur, depth)
	}
	return cur
}

func (g *gen) genStruct(cur *ir.Block, depth int) *ir.Block {
	kind := g.pickKind(depth)
	switch kind {
	case KindIf:
		return g.genIf(cur, depth)
	case KindIfElse:
		return g.genIfElse(cur, depth)
	case KindSwitch:
		return g.genSwitch(cur, depth)
	case KindLoop:
		return g.genLoop(cur, depth)
	case KindChain:
		return g.genChain(cur)
	default:
		g.emitOps(cur, g.blockOps())
		return cur
	}
}

func (g *gen) pickKind(depth int) StructKind {
	if depth >= g.p.MaxDepth || g.budget <= 0 {
		return KindStraight
	}
	total := 0.0
	for _, w := range g.p.StructWeights {
		total += w
	}
	x := g.rng.Float64() * total
	for k, w := range g.p.StructWeights {
		if x < w {
			return StructKind(k)
		}
		x -= w
	}
	return KindStraight
}

func (g *gen) blockOps() int {
	lo, hi := g.p.BlockOpsMin, g.p.BlockOpsMax
	if hi <= lo {
		return lo
	}
	return lo + g.rng.Intn(hi-lo+1)
}

// twoWayProb draws the taken probability for a two-way branch following the
// preset's bias model.
func (g *gen) twoWayProb() float64 {
	if g.rng.Float64() < g.p.BiasedFrac {
		if g.rng.Float64() < 0.5 {
			return g.p.Bias
		}
		return 1 - g.p.Bias
	}
	return 0.2 + 0.6*g.rng.Float64()
}

// genArm emits the body of a conditional arm: a short straight-line run,
// occasionally with one nested structure. Real if-arms in hot code are
// small; unbounded nesting here would make every arm compete with the hot
// path for issue slots far beyond what SPEC-shaped code does.
func (g *gen) genArm(b *ir.Block, depth int) *ir.Block {
	n := g.p.BlockOpsMax
	if n > 6 {
		n = 6
	}
	g.emitOps(b, 1+g.rng.Intn(n))
	if depth < g.p.MaxDepth && g.rng.Float64() < 0.25 {
		return g.genStruct(b, depth)
	}
	return b
}

// genIf emits: cur { ops; cmpp; br then } -> join; then -> join.
func (g *gen) genIf(cur *ir.Block, depth int) *ir.Block {
	g.emitOps(cur, g.blockOps())
	p := g.emitCmpp(cur)
	then := g.f.NewBlock()
	join := g.f.NewBlock()
	g.emitBranch(cur, p, then.ID, g.twoWayProb())
	cur.FallThrough = join.ID
	end := g.genArm(then, depth+1)
	end.FallThrough = join.ID
	g.emitOps(join, 1+g.rng.Intn(3))
	return join
}

// genIfElse emits: cur { ops; cmpp; br then } -> else; both -> join.
func (g *gen) genIfElse(cur *ir.Block, depth int) *ir.Block {
	g.emitOps(cur, g.blockOps())
	p := g.emitCmpp(cur)
	then := g.f.NewBlock()
	els := g.f.NewBlock()
	join := g.f.NewBlock()
	g.emitBranch(cur, p, then.ID, g.twoWayProb())
	cur.FallThrough = els.ID
	tEnd := g.genArm(then, depth+1)
	tEnd.FallThrough = join.ID
	eEnd := g.genArm(els, depth+1)
	eEnd.FallThrough = join.ID
	g.emitOps(join, 1+g.rng.Intn(3))
	return join
}

// genSwitch emits a wide, shallow multiway branch: k-1 predicated branches
// to arm blocks plus a default fallthrough arm; every arm meets at a join.
// Arm probabilities follow the preset's skew: with ZeroArmFrac most arms are
// effectively never taken while a couple of hot arms absorb the weight —
// the Fig. 9 shape that defeats the exit-count heuristic.
func (g *gen) genSwitch(cur *ir.Block, depth int) *ir.Block {
	g.emitOps(cur, g.blockOps())
	k := g.p.SwitchArmsMin
	if g.p.SwitchArmsMax > g.p.SwitchArmsMin {
		k += g.rng.Intn(g.p.SwitchArmsMax - g.p.SwitchArmsMin + 1)
	}
	if k < 2 {
		k = 2
	}
	// Absolute arm distribution.
	dist := make([]float64, k)
	hot := g.rng.Intn(k)
	for i := range dist {
		switch {
		case i == hot:
			dist[i] = 0.55 + 0.3*g.rng.Float64()
		case g.rng.Float64() < g.p.ZeroArmFrac:
			dist[i] = 0.0005 * g.rng.Float64()
		default:
			dist[i] = 0.02 + 0.08*g.rng.Float64()
		}
	}
	sum := 0.0
	for _, d := range dist {
		sum += d
	}
	for i := range dist {
		dist[i] /= sum
	}

	join := g.f.NewBlock()
	arms := make([]*ir.Block, k)
	for i := range arms {
		arms[i] = g.f.NewBlock()
	}
	// k-1 conditional branches; last arm is the fallthrough default. All
	// predicates are computed before the first branch (block layout keeps
	// non-branch ops ahead of branches).
	preds := make([]ir.Reg, k-1)
	for i := range preds {
		preds[i] = g.emitCmpp(cur)
	}
	taken := 0.0
	for i := 0; i < k-1; i++ {
		cond := dist[i]
		if rem := 1 - taken; rem > 1e-9 {
			cond = dist[i] / rem
		}
		if cond > 1 {
			cond = 1
		}
		g.emitBranch(cur, preds[i], arms[i].ID, cond)
		taken += dist[i]
	}
	cur.FallThrough = arms[k-1].ID
	// Shared handler blocks (error paths, rare sub-cases) give some cold
	// arms extra exit edges: the Fig. 9 shape where the arms with the
	// highest exit counts are not the most frequently executed, which is
	// what defeats the exit-count heuristic.
	var handlers []*ir.Block
	handler := func() *ir.Block {
		if len(handlers) < 2 {
			h := g.f.NewBlock()
			g.emitOps(h, 1+g.rng.Intn(2))
			h.FallThrough = join.ID
			handlers = append(handlers, h)
			return h
		}
		return handlers[g.rng.Intn(len(handlers))]
	}
	for i, a := range arms {
		// Shallow arms: empty ("case: break") or a couple of ops, straight
		// to the join.
		if g.rng.Float64() >= g.p.EmptyArmFrac {
			g.emitOps(a, 1+g.rng.Intn(2))
		}
		cold := i != hot
		if cold && g.rng.Float64() < 0.5 {
			targets := []*ir.Block{handler()}
			if g.rng.Float64() < 0.5 {
				if h2 := handler(); h2 != targets[0] { // successors stay distinct
					targets = append(targets, h2)
				}
			}
			// Predicates first: block layout keeps ops ahead of branches.
			hps := make([]ir.Reg, len(targets))
			for j := range targets {
				hps[j] = g.emitCmpp(a)
			}
			for j, h := range targets {
				g.emitBranch(a, hps[j], h.ID, 0.02)
			}
		}
		a.FallThrough = join.ID
	}
	g.emitOps(join, 1+g.rng.Intn(3))
	return join
}

// genLoop emits a while loop; the header is a merge point (preheader +
// latch), so it roots its own treegion, and the back edge keeps regions
// acyclic.
func (g *gen) genLoop(cur *ir.Block, depth int) *ir.Block {
	header := g.f.NewBlock()
	after := g.f.NewBlock()
	cur.FallThrough = header.ID
	g.emitOps(header, g.blockOps())
	p := g.emitCmpp(header)
	// Continue with probability iters/(iters+1): mean trip count
	// LoopIterMean, attenuated 4x per nesting level so nested loops do not
	// multiply into runaway trip lengths.
	m := g.p.LoopIterMean / float64(int64(1)<<uint(2*depth))
	if m < 2 {
		m = 2
	}
	contProb := m / (m + 1)
	body := g.f.NewBlock()
	g.emitBranch(header, p, body.ID, contProb)
	header.FallThrough = after.ID
	bodyEnd := g.genSeq(body, depth+1)
	// Most real loops also break out somewhere in the body, which makes the
	// loop's continuation a merge point (and therefore its own region root)
	// instead of treegion material that competes with every iteration.
	if g.rng.Float64() < 0.6 && bodyEnd.NumSuccs() == 0 {
		bp := g.emitCmpp(bodyEnd)
		g.emitBranch(bodyEnd, bp, after.ID, 1/(2*m))
	}
	bodyEnd.FallThrough = header.ID // back edge
	g.emitOps(after, 1+g.rng.Intn(3))
	return after
}

// genChain emits a vortex-style linearized check chain: n blocks, each with
// a rarely taken escape branch to a shared handler, falling through to the
// next. Block weights down the chain are nearly equal and the only hot exit
// is at the very bottom — the Fig. 10 shape that trips the weighted-count
// heuristic.
func (g *gen) genChain(cur *ir.Block) *ir.Block {
	n := g.p.ChainLenMin
	if g.p.ChainLenMax > g.p.ChainLenMin {
		n += g.rng.Intn(g.p.ChainLenMax - g.p.ChainLenMin + 1)
	}
	escape := g.f.NewBlock()
	join := g.f.NewBlock()
	g.emitOps(cur, g.blockOps())
	p := g.emitCmpp(cur)
	g.emitBranch(cur, p, escape.ID, g.p.ChainEscapeProb)
	prev := cur
	for i := 1; i < n; i++ {
		blk := g.f.NewBlock()
		prev.FallThrough = blk.ID
		g.emitOps(blk, g.blockOps())
		pp := g.emitCmpp(blk)
		g.emitBranch(blk, pp, escape.ID, g.p.ChainEscapeProb)
		prev = blk
	}
	prev.FallThrough = join.ID
	g.emitOps(escape, 1+g.rng.Intn(3))
	escape.FallThrough = join.ID
	g.emitOps(join, 1+g.rng.Intn(3))
	return join
}

// emitCmpp emits a compare over pool operands and returns the predicate.
func (g *gen) emitCmpp(b *ir.Block) ir.Reg {
	p := g.f.NewReg(ir.ClassPred)
	conds := []ir.Cond{ir.CondEQ, ir.CondNE, ir.CondLT, ir.CondLE, ir.CondGT, ir.CondGE}
	g.f.EmitCmpp(b, p, ir.NoReg, conds[g.rng.Intn(len(conds))], g.pick(), g.pick())
	g.budget--
	return p
}

// emitBranch emits (optionally) a PBR plus the conditional branch.
func (g *gen) emitBranch(b *ir.Block, p ir.Reg, target ir.BlockID, prob float64) {
	btr := ir.NoReg
	if g.p.EmitPbr {
		btr = g.f.NewReg(ir.ClassBTR)
		// PBRs belong before the block's branches; insert before the first
		// branch so the layout contract holds when several arms share a block.
		pbr := g.f.NewOp(ir.Pbr)
		pbr.Dests = []ir.Reg{btr}
		pbr.Target = target
		insertBeforeBranches(b, pbr)
		g.budget--
	}
	g.f.EmitBrct(b, btr, p, target, prob)
}

// insertBeforeBranches places op just before b's first branch (or appends).
func insertBeforeBranches(b *ir.Block, op *ir.Op) {
	at := len(b.Ops)
	for i, o := range b.Ops {
		if o.IsBranch() {
			at = i
			break
		}
	}
	b.Ops = append(b.Ops, nil)
	copy(b.Ops[at+1:], b.Ops[at:])
	b.Ops[at] = op
}

// pick returns a live integer register, heavily biased toward recent
// definitions so that value lifetimes look like real code: most temporaries
// die within a few ops, while a minority of long-lived values (the pool)
// stay live across control flow.
func (g *gen) pick() ir.Reg {
	if len(g.recent) > 0 && g.rng.Float64() < 0.7 {
		k := 4
		if len(g.recent) < k {
			k = len(g.recent)
		}
		return g.recent[len(g.recent)-1-g.rng.Intn(k)]
	}
	return g.pool[g.rng.Intn(len(g.pool))]
}

// define registers r as a fresh live value: it enters the recency window
// and occasionally displaces a long-lived pool slot.
func (g *gen) define(r ir.Reg) {
	g.recent = append(g.recent, r)
	if len(g.recent) > 12 {
		g.recent = g.recent[1:]
	}
	if g.rng.Float64() < 0.25 {
		g.pool[g.rng.Intn(len(g.pool))] = r
	}
	g.last = r
}

// emitOps appends n computational ops to b following the preset's operand
// mix and dependence-chain fraction.
func (g *gen) emitOps(b *ir.Block, n int) {
	intALU := []ir.Opcode{ir.Add, ir.Sub, ir.Mul, ir.And, ir.Or, ir.Xor, ir.Shl, ir.Shr}
	for i := 0; i < n; i++ {
		g.budget--
		x := g.rng.Float64()
		switch {
		case x < g.p.LoadFrac:
			r := g.f.NewReg(ir.ClassGPR)
			base := g.bases[g.rng.Intn(len(g.bases))]
			g.f.EmitLd(b, r, base, int64(8*g.rng.Intn(64)))
			g.define(r)
		case x < g.p.LoadFrac+g.p.StoreFrac:
			base := g.bases[g.rng.Intn(len(g.bases))]
			g.f.EmitSt(b, base, int64(8*g.rng.Intn(64)), g.pick())
		case x < g.p.LoadFrac+g.p.StoreFrac+g.p.FPFrac:
			r := g.f.NewReg(ir.ClassFPR)
			opc := ir.FMul
			switch g.rng.Intn(4) {
			case 0:
				opc = ir.FAdd
			case 3:
				opc = ir.FDiv
			}
			a := g.fpool[g.rng.Intn(len(g.fpool))]
			c := g.fpool[g.rng.Intn(len(g.fpool))]
			g.f.EmitALU(b, opc, r, a, c)
			g.fpool[g.rng.Intn(len(g.fpool))] = r
		case x < g.p.LoadFrac+g.p.StoreFrac+g.p.FPFrac+g.p.ImmFrac:
			r := g.f.NewReg(ir.ClassGPR)
			g.f.EmitMovI(b, r, int64(g.rng.Intn(4096)))
			g.define(r)
		default:
			r := g.f.NewReg(ir.ClassGPR)
			s1 := g.pick()
			if g.rng.Float64() < g.p.ChainFrac && g.last.IsValid() {
				s1 = g.last
			}
			g.f.EmitALU(b, intALU[g.rng.Intn(len(intALU))], r, s1, g.pick())
			g.define(r)
		}
	}
}
