// Package inline implements demand-driven inlining in the style of Way &
// Pollock: instead of a separate whole-program inlining phase, the treegion
// former asks the inliner about each block the moment the block is absorbed
// into a growing region. If the block contains a resolved call whose callee
// fits under the configured budgets, the callee's body is spliced into the
// caller right there — and formation keeps absorbing straight through the
// spliced blocks, growing treegions across what used to be a call barrier.
// Calls the inliner declines stay in place as opaque scheduling barriers,
// leaving the compilation bit-identical to the single-function pipeline.
//
// A splice is built to be replayable by the differential interpreter:
//
//   - Spliced clones carry namespaced Orig IDs (ir.OrigStride partitions the
//     ID space per callee), so the branch oracle makes the same decisions for
//     an inlined body as for the callee executing in its own call frame.
//   - The host block is split at the call: the prefix keeps the host's
//     identity and binds the arguments with Copy ops; the continuation block
//     keeps the host's Orig, so the trace records the same "control returns
//     to the caller block" event interp.RunIn logs when a real call returns.
//   - Callee registers are renamed into fresh host registers through the
//     callee's dense ir.RegIndexTable, one fresh set per splice, so two
//     inlined instances of the same callee never interfere.
package inline

import (
	"fmt"

	"treegion/internal/ir"
	"treegion/internal/profile"
)

// Config bounds demand-driven inlining. The zero value disables it.
type Config struct {
	// Enabled turns the pass on; all other fields are ignored when false.
	Enabled bool
	// MaxDepth caps splice nesting: a call found inside an already spliced
	// body inlines only while its depth stays within the cap. Recursive
	// call chains terminate against this bound.
	MaxDepth int
	// MaxCalleeOps and MaxCalleeBlocks cap the static size of a callee body
	// eligible for splicing.
	MaxCalleeOps    int
	MaxCalleeBlocks int
	// ExpansionLimit caps the host function's growth: splicing stops once
	// the function would exceed ExpansionLimit × its pre-formation op count.
	ExpansionLimit float64
}

// DefaultConfig returns the enabled configuration used by the experiments:
// depth 3, callee bodies up to 48 ops / 12 blocks, 3× code expansion.
func DefaultConfig() Config {
	return Config{Enabled: true, MaxDepth: 3, MaxCalleeOps: 48, MaxCalleeBlocks: 12, ExpansionLimit: 3.0}
}

// withDefaults mirrors the formers' defaulting so a caller can enable
// inlining without filling in every knob.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MaxDepth <= 0 {
		c.MaxDepth = d.MaxDepth
	}
	if c.MaxCalleeOps <= 0 {
		c.MaxCalleeOps = d.MaxCalleeOps
	}
	if c.MaxCalleeBlocks <= 0 {
		c.MaxCalleeBlocks = d.MaxCalleeBlocks
	}
	if c.ExpansionLimit < 1 {
		c.ExpansionLimit = d.ExpansionLimit
	}
	return c
}

// Fingerprint renders the budget knobs for configuration fingerprints.
func (c Config) Fingerprint() string {
	c = c.withDefaults()
	return fmt.Sprintf("%d-%d-%d-%g", c.MaxDepth, c.MaxCalleeOps, c.MaxCalleeBlocks, c.ExpansionLimit)
}

// Env is the interprocedural context of one function compile: the resolved
// program and the per-function standalone profiles (parallel to Prog.Funcs).
// Both hold the original, unmutated inputs; splices clone out of them.
type Env struct {
	Prog     *ir.Program
	Profiles []*profile.Data
}

// entryWeight returns how many profiled trips entered function fi — the
// denominator that turns the callee's standalone profile into per-invocation
// weight.
func (e *Env) entryWeight(fi int) float64 {
	if fi < 0 || fi >= len(e.Profiles) || e.Profiles[fi] == nil {
		return 0
	}
	return e.Profiles[fi].BlockWeight(e.Prog.Funcs[fi].Entry)
}

// Splice records one performed inline for the verifier and telemetry.
type Splice struct {
	// Callee names the inlined function; CalleeIndex is its program index.
	Callee      string
	CalleeIndex int
	// Depth is the splice's nesting level (1 = a call in original caller
	// code, 2 = a call found inside a depth-1 splice, ...).
	Depth int
	// Host is the block the call lived in (it keeps its ID as the prefix),
	// Entry the clone of the callee's entry block, Cont the continuation
	// block carrying the host's post-call ops (and the host's Orig).
	Host  ir.BlockID
	Entry ir.BlockID
	Cont  ir.BlockID
	// Blocks lists the spliced clones in callee block order (Cont excluded).
	Blocks []ir.BlockID
	// Ops counts the ops added by this splice (clones plus binding copies).
	Ops int
}

// Stats summarizes one function's inlining for reporting and verification.
// The Config rides along so the verifier can re-check the depth cap (CL003)
// against exactly the budgets the compiler used.
type Stats struct {
	Config Config
	// Inlined counts performed splices; InlinedOps the ops they added.
	Inlined    int
	InlinedOps int
	// Declined* count calls left as barriers, by the first budget they
	// failed.
	DeclinedDepth   int
	DeclinedSize    int
	DeclinedBudget  int
	DeclinedGuarded int
	DeclinedShape   int
	// Splices records every performed splice for the CL verifier rules.
	Splices []Splice
}

// Declined sums the decline counters.
func (s Stats) Declined() int {
	return s.DeclinedDepth + s.DeclinedSize + s.DeclinedBudget + s.DeclinedGuarded + s.DeclinedShape
}

// Add folds o into s (for program-level aggregation). Splice records are
// concatenated in call order.
func (s Stats) Add(o Stats) Stats {
	s.Inlined += o.Inlined
	s.InlinedOps += o.InlinedOps
	s.DeclinedDepth += o.DeclinedDepth
	s.DeclinedSize += o.DeclinedSize
	s.DeclinedBudget += o.DeclinedBudget
	s.DeclinedGuarded += o.DeclinedGuarded
	s.DeclinedShape += o.DeclinedShape
	s.Splices = append(s.Splices, o.Splices...)
	if s.Config == (Config{}) {
		s.Config = o.Config
	}
	return s
}

// Inliner performs demand-driven splices into one working function. It
// implements the region formers' core.BlockRewriter hook.
type Inliner struct {
	cfg  Config
	env  *Env
	fn   *ir.Function
	prof *profile.Data
	// budgetOps is the op-count ceiling: ExpansionLimit × pre-formation size.
	budgetOps int
	// depth tracks the splice nesting of blocks created by splices; absent
	// means original caller code (depth 0).
	depth map[ir.BlockID]int
	stats Stats
}

// New builds an inliner over the working function fn and its (mutable)
// profile prof, resolving callees against env. It returns nil when the
// configuration disables inlining or no program context is available, so
// callers can pass the result straight to the formers.
func New(cfg Config, env *Env, fn *ir.Function, prof *profile.Data) *Inliner {
	if !cfg.Enabled || env == nil || env.Prog == nil || prof == nil {
		return nil
	}
	cfg = cfg.withDefaults()
	return &Inliner{
		cfg:       cfg,
		env:       env,
		fn:        fn,
		prof:      prof,
		budgetOps: int(cfg.ExpansionLimit * float64(fn.NumOps())),
		depth:     make(map[ir.BlockID]int),
		stats:     Stats{Config: cfg},
	}
}

// Stats returns the splice/decline record accumulated so far.
func (in *Inliner) Stats() Stats { return in.stats }

// RewriteBlock is the formation hook: it scans block bid for resolved calls
// and splices the first eligible one (everything after the call, including
// any later calls, moves to the continuation block, which formation will
// absorb and hand back to this hook in turn). It reports whether the
// function was mutated — the caller must then refresh its CFG bookkeeping
// for bid's successors and the appended blocks.
func (in *Inliner) RewriteBlock(bid ir.BlockID) bool {
	b := in.fn.Block(bid)
	d := in.depth[bid]
	for i, op := range b.Ops {
		if op.Opcode != ir.Call || op.Callee == "" {
			continue
		}
		ci := in.env.Prog.Index(op.Callee)
		if ci < 0 {
			in.stats.DeclinedShape++
			continue
		}
		if !in.eligible(op, ci, d) {
			continue
		}
		in.splice(b, i, op, ci, d)
		return true
	}
	return false
}

// eligible applies the budgets to one candidate call, counting the first
// failed test. Calls under an if-conversion guard are never spliced — an
// unconditionally spliced body cannot reproduce squash semantics.
func (in *Inliner) eligible(op *ir.Op, ci, depth int) bool {
	if op.Guarded() {
		in.stats.DeclinedGuarded++
		return false
	}
	if depth+1 > in.cfg.MaxDepth {
		in.stats.DeclinedDepth++
		return false
	}
	callee := in.env.Prog.Funcs[ci]
	if callee.NumOps() > in.cfg.MaxCalleeOps || len(callee.Blocks) > in.cfg.MaxCalleeBlocks {
		in.stats.DeclinedSize++
		return false
	}
	// The callee must return (a body with no RET would leave the
	// continuation unreachable) and must have been profiled (the entry
	// weight scales the spliced profile).
	hasRet := false
	for _, cb := range callee.Blocks {
		for _, cop := range cb.Ops {
			if cop.Opcode == ir.Ret {
				hasRet = true
			}
		}
	}
	if !hasRet || in.env.entryWeight(ci) <= 0 {
		in.stats.DeclinedShape++
		return false
	}
	// Binding copies (arguments in the prefix, returns in each RET clone)
	// count against the expansion budget along with the body.
	added := callee.NumOps() + len(op.Srcs) + len(op.Dests)
	if in.fn.NumOps()+added > in.budgetOps {
		in.stats.DeclinedBudget++
		return false
	}
	return true
}

// splice inlines the call at b.Ops[i] (known eligible): it splits b at the
// call, clones the callee body with namespaced Origs and renamed registers,
// and rewires profile weights so downstream measurement sees the inlined
// execution.
func (in *Inliner) splice(b *ir.Block, i int, call *ir.Op, ci, d int) {
	fn := in.fn
	callee := in.env.Prog.Funcs[ci]
	base := in.env.Prog.OrigBase(ci)
	calleeProf := in.env.Profiles[ci]
	w := in.prof.BlockWeight(b.ID)
	scale := w / in.env.entryWeight(ci)

	// The host's outgoing edges (branches after the call plus fallthrough)
	// transfer to the continuation; snapshot them before the split.
	oldSuccs := b.Succs()

	// Continuation: the host's post-call tail. It keeps the host's Orig so
	// the block trace logs the caller resuming, exactly like a real return.
	cont := fn.NewBlock()
	cont.Orig = b.Orig
	cont.FallThrough = b.FallThrough
	cont.Ops = append([]*ir.Op(nil), b.Ops[i+1:]...)

	// Clone the callee's blocks under fresh IDs and namespaced Origs.
	idMap := make([]ir.BlockID, len(callee.Blocks))
	clones := make([]*ir.Block, len(callee.Blocks))
	for j, cb := range callee.Blocks {
		nb := fn.NewBlock()
		nb.Orig = ir.BlockID(base) + cb.Orig
		idMap[j] = nb.ID
		clones[j] = nb
	}

	// One fresh register set per splice, indexed through the callee's dense
	// register table: distinct inlined instances of the same callee never
	// share a name, so they cannot clobber each other.
	tbl := callee.RegIndexTable()
	renamed := make([]ir.Reg, tbl.Len())
	rename := func(r ir.Reg) ir.Reg {
		if !r.IsValid() {
			return r
		}
		k := tbl.Of(r)
		if k < 0 {
			return fn.NewReg(r.Class) // defensive; the table covers every op
		}
		if !renamed[k].IsValid() {
			renamed[k] = fn.NewReg(r.Class)
		}
		return renamed[k]
	}
	renameAll := func(rs []ir.Reg) []ir.Reg {
		if len(rs) == 0 {
			return nil
		}
		out := make([]ir.Reg, len(rs))
		for k, r := range rs {
			out[k] = rename(r)
		}
		return out
	}

	splicedOps := 0
	emit := func(nb *ir.Block, opc ir.Opcode) *ir.Op {
		op := fn.NewOp(opc)
		nb.Ops = append(nb.Ops, op)
		splicedOps++
		return op
	}
	for j, cb := range callee.Blocks {
		nb := clones[j]
		if cb.FallThrough != ir.NoBlock {
			nb.FallThrough = idMap[cb.FallThrough]
		}
		returns := false
		for _, sop := range cb.Ops {
			if sop.Opcode == ir.Ret {
				// The RET becomes a fallthrough to the continuation; any ops
				// after it were unreachable and are dropped with it.
				returns = true
				break
			}
			no := fn.NewOp(sop.Opcode)
			id := no.ID
			*no = *sop
			no.ID = id
			no.Orig = base + sop.Orig
			no.Dests = renameAll(sop.Dests)
			no.Srcs = renameAll(sop.Srcs)
			no.Guard = rename(sop.Guard)
			if no.IsBranch() || no.Opcode == ir.Pbr {
				no.Target = idMap[sop.Target]
			}
			nb.Ops = append(nb.Ops, no)
			splicedOps++
		}
		if returns {
			// Bind the callee's return registers into the call's
			// destinations, then fall through to the caller's continuation.
			for k, dst := range call.Dests {
				cp := emit(nb, ir.Copy)
				cp.Dests = []ir.Reg{dst}
				cp.Srcs = []ir.Reg{rename(callee.Rets[k])}
			}
			nb.FallThrough = cont.ID
		}
	}

	// Split the host: the prefix keeps everything before the call, drops the
	// call itself, binds the arguments to the renamed parameters, and falls
	// through into the spliced entry. The full slice expression pins the
	// prefix's capacity so appending copies cannot scribble over the tail
	// that now lives in cont.
	b.Ops = b.Ops[:i:i]
	for k, p := range callee.Params {
		cp := emit(b, ir.Copy)
		cp.Dests = []ir.Reg{rename(p)}
		cp.Srcs = []ir.Reg{call.Srcs[k]}
	}
	b.FallThrough = idMap[callee.Entry]

	// Profile: the callee's standalone weights scale by invocations-per-trip
	// onto the clones; the host's out-edge weights move to the continuation.
	for j, cb := range callee.Blocks {
		if bw := calleeProf.BlockWeight(cb.ID); bw != 0 {
			in.prof.AddBlock(idMap[j], scale*bw)
		}
		for _, s := range cb.Succs() {
			if ew := calleeProf.EdgeWeight(cb.ID, s); ew != 0 {
				in.prof.AddEdge(idMap[cb.ID], idMap[s], scale*ew)
			}
		}
		if clones[j].FallThrough == cont.ID {
			if bw := calleeProf.BlockWeight(cb.ID); bw != 0 {
				in.prof.AddEdge(idMap[j], cont.ID, scale*bw)
			}
		}
	}
	for _, s := range oldSuccs {
		if ew := in.prof.EdgeWeight(b.ID, s); ew != 0 {
			delete(in.prof.Edge, profile.Edge{From: b.ID, To: s})
			in.prof.AddEdge(cont.ID, s, ew)
		}
	}
	if w != 0 {
		in.prof.AddBlock(cont.ID, w)
		in.prof.AddEdge(b.ID, idMap[callee.Entry], w)
	}

	for _, nb := range clones {
		in.depth[nb.ID] = d + 1
	}
	in.depth[cont.ID] = d

	in.stats.Inlined++
	in.stats.InlinedOps += splicedOps
	in.stats.Splices = append(in.stats.Splices, Splice{
		Callee:      call.Callee,
		CalleeIndex: ci,
		Depth:       d + 1,
		Host:        b.ID,
		Entry:       idMap[callee.Entry],
		Cont:        cont.ID,
		Blocks:      idMap,
		Ops:         splicedOps,
	})
}
