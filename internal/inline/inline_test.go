package inline

import (
	"testing"

	"treegion/internal/interp"
	"treegion/internal/ir"
	"treegion/internal/irtext"
	"treegion/internal/profile"
)

const callerSrc = `
func cmain
bb0:
  r0 = movi 7
  r1 = movi 5
  r2 = call @cadd r0, r1
  r3 = add r2, r0
  st [r0+0], r3
  ret

func cadd(r0, r1) -> (r2)
bb0:
  r2 = add r0, r1
  ret
`

// setup parses callerSrc, profiles every function, and returns the program,
// its profiles, and a working clone of function 0 with its profile.
func setup(t *testing.T) (*ir.Program, *Env, *ir.Function, *profile.Data) {
	t.Helper()
	prg, err := irtext.ParseProgram(callerSrc)
	if err != nil {
		t.Fatal(err)
	}
	profs := make([]*profile.Data, len(prg.Funcs))
	for i, fn := range prg.Funcs {
		profs[i], err = interp.Profile(fn, 1, 50, interp.Config{MaxSteps: 1_000_000})
		if err != nil {
			t.Fatal(err)
		}
	}
	env := &Env{Prog: prg, Profiles: profs}
	return prg, env, prg.Funcs[0].Clone(), profs[0].Clone()
}

func TestNewReturnsNilWhenInert(t *testing.T) {
	_, env, fn, prof := setup(t)
	if New(Config{}, env, fn, prof) != nil {
		t.Fatal("disabled config must yield a nil inliner")
	}
	if New(DefaultConfig(), nil, fn, prof) != nil {
		t.Fatal("nil env must yield a nil inliner")
	}
	if New(DefaultConfig(), &Env{}, fn, prof) != nil {
		t.Fatal("env without a program must yield a nil inliner")
	}
	if New(DefaultConfig(), env, fn, nil) != nil {
		t.Fatal("nil profile must yield a nil inliner")
	}
}

func TestSpliceBindsConvention(t *testing.T) {
	prg, env, fn, prof := setup(t)
	in := New(DefaultConfig(), env, fn, prof)
	if in == nil {
		t.Fatal("inliner unexpectedly nil")
	}
	preOps := fn.NumOps()
	if !in.RewriteBlock(fn.Entry) {
		t.Fatal("eligible call not spliced")
	}
	st := in.Stats()
	if st.Inlined != 1 || st.Declined() != 0 || len(st.Splices) != 1 {
		t.Fatalf("stats = %+v", st)
	}
	sp := st.Splices[0]
	if sp.Callee != "cadd" || sp.CalleeIndex != 1 || sp.Depth != 1 {
		t.Fatalf("splice record = %+v", sp)
	}
	// Callee body (1 add) + 2 arg copies + 1 ret copy; the RET itself is
	// replaced by a fallthrough.
	if sp.Ops != 4 || st.InlinedOps != 4 || fn.NumOps() != preOps-1+4 {
		t.Fatalf("ops accounting: splice %d, total %d->%d", sp.Ops, preOps, fn.NumOps())
	}
	// Host prefix: the call is gone, replaced by two argument copies, and
	// control falls through into the spliced entry.
	host := fn.Block(sp.Host)
	last := host.Ops[len(host.Ops)-1]
	if last.Opcode != ir.Copy || host.FallThrough != sp.Entry {
		t.Fatalf("host not rewired: last op %v, fallthrough %v", last.Opcode, host.FallThrough)
	}
	for _, b := range fn.Blocks {
		for _, op := range b.Ops {
			if op.Opcode == ir.Call {
				t.Fatal("call op survived the splice")
			}
		}
	}
	// The entry clone carries the callee's namespaced Orig; the continuation
	// keeps the host's, so the trace logs the caller resuming.
	entry := fn.Block(sp.Entry)
	if int(entry.Orig) < prg.OrigBase(1) {
		t.Fatalf("entry Orig %d not namespaced (base %d)", entry.Orig, prg.OrigBase(1))
	}
	cont := fn.Block(sp.Cont)
	if cont.Orig != host.Orig {
		t.Fatalf("continuation Orig %d != host %d", cont.Orig, host.Orig)
	}
	// The RET clone binds the callee's return into the call destination and
	// falls through to the continuation.
	bind := entry.Ops[len(entry.Ops)-1]
	if bind.Opcode != ir.Copy || entry.FallThrough != sp.Cont {
		t.Fatalf("return not bound: %v -> %v", bind.Opcode, entry.FallThrough)
	}
	if err := fn.Validate(); err != nil {
		t.Fatalf("spliced function invalid: %v", err)
	}
}

func TestDeclineReasons(t *testing.T) {
	t.Run("size", func(t *testing.T) {
		_, env, fn, prof := setup(t)
		c := DefaultConfig()
		c.MaxCalleeOps = 1
		in := New(c, env, fn, prof)
		if in.RewriteBlock(fn.Entry) {
			t.Fatal("oversized callee spliced")
		}
		if st := in.Stats(); st.DeclinedSize != 1 || st.Inlined != 0 {
			t.Fatalf("stats = %+v", st)
		}
	})
	t.Run("budget", func(t *testing.T) {
		_, env, fn, prof := setup(t)
		c := DefaultConfig()
		c.ExpansionLimit = 1.0 // no headroom: any splice adds ops
		in := New(c, env, fn, prof)
		if in.RewriteBlock(fn.Entry) {
			t.Fatal("over-budget callee spliced")
		}
		if st := in.Stats(); st.DeclinedBudget != 1 {
			t.Fatalf("stats = %+v", st)
		}
	})
	t.Run("guarded", func(t *testing.T) {
		_, env, fn, prof := setup(t)
		for _, b := range fn.Blocks {
			for _, op := range b.Ops {
				if op.Opcode == ir.Call {
					op.Guard = fn.NewReg(ir.ClassPred)
				}
			}
		}
		in := New(DefaultConfig(), env, fn, prof)
		if in.RewriteBlock(fn.Entry) {
			t.Fatal("guarded call spliced")
		}
		if st := in.Stats(); st.DeclinedGuarded != 1 {
			t.Fatalf("stats = %+v", st)
		}
	})
	t.Run("shape-unprofiled", func(t *testing.T) {
		_, env, fn, prof := setup(t)
		env.Profiles[1] = nil // entry weight unknowable
		in := New(DefaultConfig(), env, fn, prof)
		if in.RewriteBlock(fn.Entry) {
			t.Fatal("unprofiled callee spliced")
		}
		if st := in.Stats(); st.DeclinedShape != 1 {
			t.Fatalf("stats = %+v", st)
		}
	})
}

const chainSrc = `
func dmain
bb0:
  r0 = movi 9
  r1 = movi 2
  r2 = call @dmid r0, r1
  st [r0+0], r2
  ret

func dmid(r0, r1) -> (r3)
bb0:
  r2 = call @dleaf r0, r1
  r3 = add r2, r1
  ret

func dleaf(r0, r1) -> (r2)
bb0:
  r2 = mul r0, r1
  ret
`

func TestDepthCapDeclinesNestedCall(t *testing.T) {
	prg, err := irtext.ParseProgram(chainSrc)
	if err != nil {
		t.Fatal(err)
	}
	profs := make([]*profile.Data, len(prg.Funcs))
	for i, fn := range prg.Funcs {
		profs[i], err = interp.Profile(fn, 1, 50, interp.Config{MaxSteps: 1_000_000})
		if err != nil {
			t.Fatal(err)
		}
	}
	env := &Env{Prog: prg, Profiles: profs}
	fn, prof := prg.Funcs[0].Clone(), profs[0].Clone()
	c := DefaultConfig()
	c.MaxDepth = 1
	in := New(c, env, fn, prof)
	if !in.RewriteBlock(fn.Entry) {
		t.Fatal("depth-1 splice refused")
	}
	sp := in.Stats().Splices[0]
	// The spliced dmid body carries the call to dleaf at depth 1; with
	// MaxDepth 1 the nested call must be declined, not spliced.
	if in.RewriteBlock(sp.Entry) {
		t.Fatal("nested call spliced past the depth cap")
	}
	if st := in.Stats(); st.DeclinedDepth != 1 || st.Inlined != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Raising the cap splices it, at depth 2.
	fn2, prof2 := prg.Funcs[0].Clone(), profs[0].Clone()
	in2 := New(DefaultConfig(), env, fn2, prof2)
	if !in2.RewriteBlock(fn2.Entry) {
		t.Fatal("first splice refused")
	}
	if !in2.RewriteBlock(in2.Stats().Splices[0].Entry) {
		t.Fatal("nested splice refused under default depth")
	}
	if sps := in2.Stats().Splices; len(sps) != 2 || sps[1].Depth != 2 {
		t.Fatalf("splices = %+v", sps)
	}
}

func TestTwoSplicesGetFreshRegisters(t *testing.T) {
	src := `
func tmain
bb0:
  r0 = movi 4
  r1 = movi 3
  r2 = call @tadd r0, r1
  r3 = call @tadd r2, r1
  st [r0+0], r3
  ret

func tadd(r0, r1) -> (r2)
bb0:
  r2 = add r0, r1
  ret
`
	prg, err := irtext.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	profs := make([]*profile.Data, len(prg.Funcs))
	for i, fn := range prg.Funcs {
		profs[i], err = interp.Profile(fn, 1, 50, interp.Config{MaxSteps: 1_000_000})
		if err != nil {
			t.Fatal(err)
		}
	}
	env := &Env{Prog: prg, Profiles: profs}
	fn, prof := prg.Funcs[0].Clone(), profs[0].Clone()
	in := New(DefaultConfig(), env, fn, prof)
	if !in.RewriteBlock(fn.Entry) {
		t.Fatal("first splice refused")
	}
	cont := in.Stats().Splices[0].Cont
	if !in.RewriteBlock(cont) {
		t.Fatal("second splice refused")
	}
	sps := in.Stats().Splices
	if len(sps) != 2 {
		t.Fatalf("splices = %+v", sps)
	}
	// The add op in each clone must write a different register.
	destOf := func(bid ir.BlockID) ir.Reg {
		for _, op := range fn.Block(bid).Ops {
			if op.Opcode == ir.Add {
				return op.Dests[0]
			}
		}
		t.Fatalf("no add in block %d", bid)
		return ir.Reg{}
	}
	if d0, d1 := destOf(sps[0].Entry), destOf(sps[1].Entry); d0 == d1 {
		t.Fatalf("two instances share register %v", d0)
	}
	if err := fn.Validate(); err != nil {
		t.Fatalf("doubly spliced function invalid: %v", err)
	}
	// The program still computes (4+3)+3 = 10: run it and check the store.
	tr, err := interp.Run(fn, interp.NewOracle(1), interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Stores) != 1 || tr.Stores[0].Value != 10 {
		t.Fatalf("stores = %+v, want 10", tr.Stores)
	}
}
