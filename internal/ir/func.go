package ir

import (
	"fmt"
	"strings"
)

// Function is a single procedure: a list of basic blocks forming a CFG.
// Blocks[i].ID == i always holds; tail duplication appends new blocks and
// never removes old ones (unreachable blocks are tolerated by analyses).
type Function struct {
	Name   string
	Blocks []*Block
	Entry  BlockID

	// Params and Rets define the function's call convention: Params are the
	// registers that receive the caller's arguments (positionally matched to
	// a Call op's Srcs), Rets are the registers whose values are live at RET
	// and are copied into the Call op's Dests. Both are empty for the legacy
	// single-function programs.
	Params []Reg
	Rets   []Reg

	nextOpID  int
	nextReg   [5]int // per-RegClass next virtual register number
	nextBlock BlockID
}

// NewFunction returns an empty function with no blocks.
func NewFunction(name string) *Function {
	return &Function{Name: name, Entry: NoBlock}
}

// NewBlock appends a fresh empty block (no fallthrough) and returns it.
// The first block created becomes the entry.
func (f *Function) NewBlock() *Block {
	b := &Block{ID: f.nextBlock, Orig: f.nextBlock, FallThrough: NoBlock}
	f.nextBlock++
	f.Blocks = append(f.Blocks, b)
	if f.Entry == NoBlock {
		f.Entry = b.ID
	}
	return b
}

// Block returns the block with the given ID.
func (f *Function) Block(id BlockID) *Block { return f.Blocks[id] }

// NewOp allocates an op with a fresh ID (Orig == ID). The caller appends it
// to a block.
func (f *Function) NewOp(opc Opcode) *Op {
	op := &Op{ID: f.nextOpID, Orig: f.nextOpID, Opcode: opc}
	f.nextOpID++
	return op
}

// InitOp initializes op in place with a fresh ID (Orig == ID), exactly like
// NewOp but without allocating. Slab-allocating parsers and decoders carve
// ops out of a backing array and initialize them through this.
func (f *Function) InitOp(op *Op, opc Opcode) {
	*op = Op{ID: f.nextOpID, Orig: f.nextOpID, Opcode: opc}
	f.nextOpID++
}

// CloneOp duplicates op under a fresh ID, preserving Orig.
func (f *Function) CloneOp(op *Op) *Op {
	c := op.Clone(f.nextOpID)
	f.nextOpID++
	return c
}

// NewReg allocates a fresh virtual register of the given class.
func (f *Function) NewReg(c RegClass) Reg {
	n := f.nextReg[c]
	f.nextReg[c]++
	return Reg{Class: c, Num: n}
}

// NoteReg informs the allocator that r is in use, so NewReg never returns a
// clashing register. Builders that hand-number registers must call this.
func (f *Function) NoteReg(r Reg) {
	if r.IsValid() && r.Num >= f.nextReg[r.Class] {
		f.nextReg[r.Class] = r.Num + 1
	}
}

// NumOps returns the total op count across all blocks (static code size).
func (f *Function) NumOps() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Ops)
	}
	return n
}

// DuplicateBlock clones block src (ops get fresh IDs, same Orig) and returns
// the new block. Successor edges are copied verbatim; the caller fixes up
// predecessors.
func (f *Function) DuplicateBlock(src *Block) *Block {
	nb := f.NewBlock()
	nb.Orig = src.Orig
	nb.FallThrough = src.FallThrough
	nb.Ops = make([]*Op, 0, len(src.Ops))
	for _, op := range src.Ops {
		nb.Ops = append(nb.Ops, f.CloneOp(op))
	}
	return nb
}

// Clone returns a deep copy of f. Block and op IDs are preserved, so a
// clone serves as a pre-transformation snapshot for semantic comparison.
//
// The copy is slab-allocated: all blocks, ops, and operand registers live in
// three backing arrays instead of one allocation per op. Nothing ever
// appends to a cloned op's Dests/Srcs (transforms assign elements in place
// or replace the slice wholesale), so sharing one register backing array is
// safe.
func (f *Function) Clone() *Function {
	c := &Function{
		Name:      f.Name,
		Entry:     f.Entry,
		Params:    append([]Reg(nil), f.Params...),
		Rets:      append([]Reg(nil), f.Rets...),
		nextOpID:  f.nextOpID,
		nextReg:   f.nextReg,
		nextBlock: f.nextBlock,
	}
	nops, nregs := 0, 0
	for _, b := range f.Blocks {
		nops += len(b.Ops)
		for _, op := range b.Ops {
			nregs += len(op.Dests) + len(op.Srcs)
		}
	}
	blockSlab := make([]Block, len(f.Blocks))
	opSlab := make([]Op, nops)
	regSlab := make([]Reg, nregs)
	c.Blocks = make([]*Block, len(f.Blocks))
	opPtrs := make([]*Op, nops)
	oi, ri := 0, 0
	for i, b := range f.Blocks {
		nb := &blockSlab[i]
		nb.ID, nb.Orig, nb.FallThrough = b.ID, b.Orig, b.FallThrough
		nb.Ops = opPtrs[oi : oi : oi+len(b.Ops)]
		for _, op := range b.Ops {
			no := &opSlab[oi]
			*no = *op
			no.Dests, no.Srcs = nil, nil
			if n := len(op.Dests); n > 0 {
				no.Dests = regSlab[ri : ri+n : ri+n]
				ri += copy(no.Dests, op.Dests)
			}
			if n := len(op.Srcs); n > 0 {
				no.Srcs = regSlab[ri : ri+n : ri+n]
				ri += copy(no.Srcs, op.Srcs)
			}
			opPtrs[oi] = no
			nb.Ops = append(nb.Ops, no)
			oi++
		}
		c.Blocks[i] = nb
	}
	return c
}

// Validate checks structural invariants of the function and returns the
// first violation found, or nil.
func (f *Function) Validate() error {
	if f.Entry == NoBlock {
		return fmt.Errorf("%s: no entry block", f.Name)
	}
	// Op IDs are dense (every allocation path goes through nextOpID), so a
	// flat bool slab replaces the old map; hand-built functions with IDs
	// outside [0, nextOpID) spill into the overflow map.
	seenOp := make([]bool, f.nextOpID)
	var seenOverflow map[int]bool
	var succBuf []BlockID
	for i, b := range f.Blocks {
		if b.ID != BlockID(i) {
			return fmt.Errorf("%s: block at index %d has ID %d", f.Name, i, b.ID)
		}
		sawBranch := false
		for j, op := range b.Ops {
			if op.ID >= 0 && op.ID < len(seenOp) {
				if seenOp[op.ID] {
					return fmt.Errorf("%s: bb%d: duplicate op ID %d", f.Name, b.ID, op.ID)
				}
				seenOp[op.ID] = true
			} else {
				if seenOverflow[op.ID] {
					return fmt.Errorf("%s: bb%d: duplicate op ID %d", f.Name, b.ID, op.ID)
				}
				if seenOverflow == nil {
					seenOverflow = make(map[int]bool)
				}
				seenOverflow[op.ID] = true
			}
			if op.IsBranch() {
				sawBranch = true
				if op.Target < 0 || int(op.Target) >= len(f.Blocks) {
					return fmt.Errorf("%s: bb%d: branch to missing bb%d", f.Name, b.ID, op.Target)
				}
				if op.Opcode == Bru && j != len(b.Ops)-1 {
					return fmt.Errorf("%s: bb%d: BRU not last", f.Name, b.ID)
				}
			} else if sawBranch && op.Opcode != Nop {
				return fmt.Errorf("%s: bb%d: non-branch op %v after a branch", f.Name, b.ID, op)
			}
			if op.Opcode == Ret && (b.FallThrough != NoBlock || sawBranch) {
				return fmt.Errorf("%s: bb%d: RET in a block with successors", f.Name, b.ID)
			}
		}
		if b.FallThrough != NoBlock && (b.FallThrough < 0 || int(b.FallThrough) >= len(f.Blocks)) {
			return fmt.Errorf("%s: bb%d: fallthrough to missing bb%d", f.Name, b.ID, b.FallThrough)
		}
		succBuf = b.AppendSuccs(succBuf[:0])
		for j, s := range succBuf {
			for _, t := range succBuf[:j] {
				if s == t {
					return fmt.Errorf("%s: bb%d: duplicate successor bb%d", f.Name, b.ID, s)
				}
			}
		}
		if len(b.Ops) > 0 && b.Ops[len(b.Ops)-1].Opcode == Bru && b.FallThrough != NoBlock {
			return fmt.Errorf("%s: bb%d: fallthrough after BRU", f.Name, b.ID)
		}
	}
	return nil
}

// String renders the whole function, one block per paragraph.
func (f *Function) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (entry bb%d)\n", f.Name, f.Entry)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "bb%d:", b.ID)
		if b.Orig != b.ID {
			fmt.Fprintf(&sb, " (dup of bb%d)", b.Orig)
		}
		sb.WriteString("\n")
		for _, op := range b.Ops {
			fmt.Fprintf(&sb, "\t%s\n", op)
		}
		if b.FallThrough != NoBlock {
			fmt.Fprintf(&sb, "\t(fallthrough bb%d)\n", b.FallThrough)
		}
	}
	return sb.String()
}
