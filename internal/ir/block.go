package ir

import "fmt"

// BlockID names a basic block within a Function. IDs are dense indices into
// Function.Blocks.
type BlockID int

// NoBlock is the absent block (e.g. no fallthrough successor).
const NoBlock BlockID = -1

// Block is a basic block: straight-line Ops with branches, if any, at the
// end. Control leaves a block through its branch ops (each carrying a Target)
// and/or through the fallthrough edge.
//
// Layout contract (checked by Function.Validate):
//   - all non-branch ops precede the first branch op;
//   - at most one Bru, and it must be the last op;
//   - a block with a Ret has no branches and no fallthrough;
//   - successor blocks are pairwise distinct.
type Block struct {
	ID   BlockID
	Orig BlockID // block this was tail-duplicated from (== ID for originals)
	Ops  []*Op
	// FallThrough is the block control reaches when no branch fires, or
	// NoBlock if the block ends the function (Ret) or ends with Bru.
	FallThrough BlockID
}

// Succs returns the successor blocks in arm order: one per branch op, then
// the fallthrough (if any). The result is freshly allocated.
func (b *Block) Succs() []BlockID {
	var out []BlockID
	for _, op := range b.Ops {
		if op.IsBranch() {
			out = append(out, op.Target)
		}
	}
	if b.FallThrough != NoBlock {
		out = append(out, b.FallThrough)
	}
	return out
}

// AppendSuccs appends the successors to buf in arm order and returns it,
// letting hot callers reuse one scratch slice instead of allocating per call.
func (b *Block) AppendSuccs(buf []BlockID) []BlockID {
	for _, op := range b.Ops {
		if op.IsBranch() {
			buf = append(buf, op.Target)
		}
	}
	if b.FallThrough != NoBlock {
		buf = append(buf, b.FallThrough)
	}
	return buf
}

// NumSuccs returns the successor count without allocating.
func (b *Block) NumSuccs() int {
	n := 0
	for _, op := range b.Ops {
		if op.IsBranch() {
			n++
		}
	}
	if b.FallThrough != NoBlock {
		n++
	}
	return n
}

// Branches returns the block's branch ops in order.
func (b *Block) Branches() []*Op {
	var out []*Op
	for _, op := range b.Ops {
		if op.IsBranch() {
			out = append(out, op)
		}
	}
	return out
}

// HasCall reports whether the block contains a call.
func (b *Block) HasCall() bool {
	for _, op := range b.Ops {
		if op.Opcode == Call {
			return true
		}
	}
	return false
}

// IsExit reports whether the block ends the function (no successors).
func (b *Block) IsExit() bool { return b.NumSuccs() == 0 }

// ReplaceSucc rewrites every edge from b to old so it points to new. It
// adjusts branch targets and the fallthrough. It reports whether anything
// changed.
func (b *Block) ReplaceSucc(old, new BlockID) bool {
	changed := false
	for _, op := range b.Ops {
		if op.IsBranch() && op.Target == old {
			op.Target = new
			changed = true
		}
	}
	if b.FallThrough == old {
		b.FallThrough = new
		changed = true
	}
	return changed
}

// String returns a short identifier like "bb4".
func (b *Block) String() string { return fmt.Sprintf("bb%d", b.ID) }
