package ir

// Dense numbering tables. Op IDs are already dense per function (NewOp hands
// them out sequentially), and virtual registers are dense per class; the hot
// analyses (liveness, DDG construction, scheduling) exploit both to replace
// pointer- and struct-keyed maps with flat slices and bitsets. The tables
// here are snapshots: they cover everything allocated at the time they are
// taken, and deliberately map later allocations (e.g. registers minted by
// scheduler renaming after a liveness snapshot) to -1, which set lookups
// treat as "absent".

// OpIDBound returns an exclusive upper bound on the op IDs present in the
// function: every op satisfies 0 <= op.ID < OpIDBound(). The bound is the
// allocator's high-water mark, widened defensively to cover hand-numbered
// ops a builder forgot to register.
func (f *Function) OpIDBound() int {
	n := f.nextOpID
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			if op.ID >= n {
				n = op.ID + 1
			}
		}
	}
	return n
}

// RegIndex maps virtual registers to dense indices 0..Len()-1 across all
// register classes, so register sets pack into bitset words. Take the index
// with Function.RegIndexTable once per analysis; registers allocated after
// the snapshot map to -1.
type RegIndex struct {
	// offset[c] is the dense index of register {class c, num 0}.
	offset [5]int
	// count[c] is the number of registers in class c at snapshot time.
	count [5]int
	total int
}

// RegIndexTable snapshots the function's register universe. It is based on
// the allocator's per-class high-water marks, widened by a scan over the ops
// so hand-numbered registers that were never passed to NoteReg still index
// correctly.
func (f *Function) RegIndexTable() RegIndex {
	var x RegIndex
	x.count = [5]int{f.nextReg[0], f.nextReg[1], f.nextReg[2], f.nextReg[3], f.nextReg[4]}
	note := func(r Reg) {
		if r.IsValid() && r.Num >= x.count[r.Class] {
			x.count[r.Class] = r.Num + 1
		}
	}
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			for _, d := range op.Dests {
				note(d)
			}
			for _, s := range op.Srcs {
				note(s)
			}
			note(op.Guard)
		}
	}
	off := 0
	for c := range x.count {
		x.offset[c] = off
		off += x.count[c]
	}
	x.total = off
	return x
}

// Len returns the size of the dense register universe.
func (x *RegIndex) Len() int { return x.total }

// Of returns r's dense index, or -1 when r is NoReg or was allocated after
// the snapshot (renamed registers never appear in pre-renaming sets).
func (x *RegIndex) Of(r Reg) int {
	if !r.IsValid() || r.Num >= x.count[r.Class] {
		return -1
	}
	return x.offset[r.Class] + r.Num
}
