package ir

import "fmt"

// FuncSnapshot is a flat, slab-friendly image of a Function: blocks, ops and
// operand registers as three parallel arrays with counts instead of
// pointers. It exists for the artifact store's binary codec — a Function
// round-trips through a snapshot with op IDs, Orig tags, and the private
// allocator counters preserved exactly (which the textual irtext round trip
// cannot do: Parse renumbers IDs and forgets Orig).
type FuncSnapshot struct {
	Name      string
	Entry     BlockID
	NextOp    int32
	NextBlock int32
	NextReg   [5]int32

	// Params and Rets mirror the function's call convention registers.
	Params []Reg
	Rets   []Reg

	Blocks []BlockSnap
	// Ops holds every op in block order (Blocks[0]'s ops first).
	Ops []OpSnap
	// Regs holds every operand register in op order: each op's Dests
	// followed by its Srcs.
	Regs []Reg
	// Syms is the callee symbol table: Call ops reference it through
	// OpSnap.Callee, in first-use order.
	Syms []string
}

// BlockSnap is one block's row in a FuncSnapshot. The block ID is implicit
// (dense index).
type BlockSnap struct {
	Orig        BlockID
	FallThrough BlockID
	NumOps      int32
}

// OpSnap is one op's row in a FuncSnapshot.
type OpSnap struct {
	ID       int32
	Orig     int32
	Opcode   Opcode
	Cond     Cond
	Renamed  bool
	Guard    Reg
	NumDests uint8
	NumSrcs  uint8
	Imm      int64
	Target   BlockID
	Prob     float64
	// Callee indexes FuncSnapshot.Syms for a resolved Call, -1 otherwise.
	Callee int32
}

// Snapshot flattens f. The snapshot aliases nothing in f.
func (f *Function) Snapshot() *FuncSnapshot {
	s := &FuncSnapshot{
		Name:      f.Name,
		Entry:     f.Entry,
		NextOp:    int32(f.nextOpID),
		NextBlock: int32(f.nextBlock),
	}
	for c, n := range f.nextReg {
		s.NextReg[c] = int32(n)
	}
	s.Params = append([]Reg(nil), f.Params...)
	s.Rets = append([]Reg(nil), f.Rets...)
	symIdx := map[string]int32{}
	nops, nregs := 0, 0
	for _, b := range f.Blocks {
		nops += len(b.Ops)
		for _, op := range b.Ops {
			nregs += len(op.Dests) + len(op.Srcs)
		}
	}
	s.Blocks = make([]BlockSnap, len(f.Blocks))
	s.Ops = make([]OpSnap, 0, nops)
	s.Regs = make([]Reg, 0, nregs)
	for i, b := range f.Blocks {
		s.Blocks[i] = BlockSnap{Orig: b.Orig, FallThrough: b.FallThrough, NumOps: int32(len(b.Ops))}
		for _, op := range b.Ops {
			callee := int32(-1)
			if op.Callee != "" {
				idx, ok := symIdx[op.Callee]
				if !ok {
					idx = int32(len(s.Syms))
					s.Syms = append(s.Syms, op.Callee)
					symIdx[op.Callee] = idx
				}
				callee = idx
			}
			s.Ops = append(s.Ops, OpSnap{
				ID:       int32(op.ID),
				Orig:     int32(op.Orig),
				Opcode:   op.Opcode,
				Cond:     op.Cond,
				Renamed:  op.Renamed,
				Guard:    op.Guard,
				NumDests: uint8(len(op.Dests)),
				NumSrcs:  uint8(len(op.Srcs)),
				Imm:      op.Imm,
				Target:   op.Target,
				Prob:     op.Prob,
				Callee:   callee,
			})
			s.Regs = append(s.Regs, op.Dests...)
			s.Regs = append(s.Regs, op.Srcs...)
		}
	}
	return s
}

// Build materializes the snapshot into a Function. Blocks, ops and operand
// registers are slab-allocated exactly as in Function.Clone. The structural
// counts are validated (so a corrupt snapshot errors instead of panicking);
// the result is NOT passed through Validate — callers that ingest untrusted
// bytes do that themselves.
func (s *FuncSnapshot) Build() (*Function, error) {
	nops := 0
	for i := range s.Blocks {
		n := int(s.Blocks[i].NumOps)
		if n < 0 {
			return nil, fmt.Errorf("ir: snapshot block %d: negative op count", i)
		}
		nops += n
	}
	if nops != len(s.Ops) {
		return nil, fmt.Errorf("ir: snapshot op count mismatch: blocks say %d, have %d", nops, len(s.Ops))
	}
	nregs := 0
	for i := range s.Ops {
		nregs += int(s.Ops[i].NumDests) + int(s.Ops[i].NumSrcs)
	}
	if nregs != len(s.Regs) {
		return nil, fmt.Errorf("ir: snapshot reg count mismatch: ops say %d, have %d", nregs, len(s.Regs))
	}
	if int(s.Entry) < 0 || int(s.Entry) >= len(s.Blocks) {
		return nil, fmt.Errorf("ir: snapshot entry bb%d out of range", s.Entry)
	}

	f := &Function{
		Name:      s.Name,
		Entry:     s.Entry,
		Params:    append([]Reg(nil), s.Params...),
		Rets:      append([]Reg(nil), s.Rets...),
		nextOpID:  int(s.NextOp),
		nextBlock: BlockID(s.NextBlock),
	}
	for c, n := range s.NextReg {
		f.nextReg[c] = int(n)
	}
	blockSlab := make([]Block, len(s.Blocks))
	opSlab := make([]Op, len(s.Ops))
	regSlab := make([]Reg, len(s.Regs))
	copy(regSlab, s.Regs)
	opPtrs := make([]*Op, len(s.Ops))
	f.Blocks = make([]*Block, len(s.Blocks))
	oi, ri := 0, 0
	for i := range s.Blocks {
		bs := &s.Blocks[i]
		if ft := bs.FallThrough; ft != NoBlock && (int(ft) < 0 || int(ft) >= len(s.Blocks)) {
			return nil, fmt.Errorf("ir: snapshot bb%d: fallthrough to missing bb%d", i, ft)
		}
		nb := &blockSlab[i]
		nb.ID, nb.Orig, nb.FallThrough = BlockID(i), bs.Orig, bs.FallThrough
		nb.Ops = opPtrs[oi : oi : oi+int(bs.NumOps)]
		for j := 0; j < int(bs.NumOps); j++ {
			os := &s.Ops[oi]
			no := &opSlab[oi]
			no.ID = int(os.ID)
			no.Orig = int(os.Orig)
			no.Opcode = os.Opcode
			no.Cond = os.Cond
			no.Renamed = os.Renamed
			no.Guard = os.Guard
			no.Imm = os.Imm
			no.Target = os.Target
			no.Prob = os.Prob
			if os.Callee >= 0 {
				if int(os.Callee) >= len(s.Syms) {
					return nil, fmt.Errorf("ir: snapshot op %d: callee symbol %d out of range", oi, os.Callee)
				}
				no.Callee = s.Syms[os.Callee]
			}
			if n := int(os.NumDests); n > 0 {
				no.Dests = regSlab[ri : ri+n : ri+n]
				ri += n
			}
			if n := int(os.NumSrcs); n > 0 {
				no.Srcs = regSlab[ri : ri+n : ri+n]
				ri += n
			}
			opPtrs[oi] = no
			nb.Ops = append(nb.Ops, no)
			oi++
		}
		f.Blocks[i] = nb
	}
	return f, nil
}
