package ir

import (
	"fmt"
	"strings"
)

// Opcode enumerates the operation repertoire of the machine models. The set
// mirrors what the paper's examples use (PlayDoh-style) plus the integer and
// floating-point ALU ops the synthetic benchmarks need.
type Opcode uint8

const (
	Nop Opcode = iota

	// Integer ALU (unit latency).
	Add
	Sub
	Mul
	Div
	And
	Or
	Xor
	Shl
	Shr
	MovI // dest = Imm
	Mov  // dest = src
	Copy // renaming compensation copy; excluded from speedup accounting

	// Compare-to-predicate: dests = [p, optional complement p],
	// srcs = [r, r], Cond selects the relation.
	Cmpp

	// Memory (serialized; load latency 2).
	Ld // dest = mem[src0 + Imm]
	St // mem[src0 + Imm] = src1

	// Floating point.
	FAdd // latency 1
	FMul // latency 3
	FDiv // latency 9

	// Control.
	Pbr  // dest = BTR primed with Target
	Brct // branch to Target if predicate src true;  srcs = [b, p]
	Brcf // branch to Target if predicate src false; srcs = [b, p]
	Bru  // unconditional branch to Target;          srcs = [b]
	Call // opaque call; scheduling barrier
	Ret  // function exit

	numOpcodes
)

var opcodeNames = [numOpcodes]string{
	Nop:  "NOP",
	Add:  "ADD",
	Sub:  "SUB",
	Mul:  "MUL",
	Div:  "DIV",
	And:  "AND",
	Or:   "OR",
	Xor:  "XOR",
	Shl:  "SHL",
	Shr:  "SHR",
	MovI: "MOVI",
	Mov:  "MOV",
	Copy: "COPY",
	Cmpp: "CMPP",
	Ld:   "LD",
	St:   "ST",
	FAdd: "FADD",
	FMul: "FMUL",
	FDiv: "FDIV",
	Pbr:  "PBR",
	Brct: "BRCT",
	Brcf: "BRCF",
	Bru:  "BRU",
	Call: "CALL",
	Ret:  "RET",
}

// String returns the assembler-style mnemonic.
func (o Opcode) String() string {
	if int(o) < len(opcodeNames) && opcodeNames[o] != "" {
		return opcodeNames[o]
	}
	return fmt.Sprintf("OP(%d)", int(o))
}

// IsBranch reports whether the opcode transfers control to a Target block.
func (o Opcode) IsBranch() bool { return o == Brct || o == Brcf || o == Bru }

// IsConditionalBranch reports whether the branch depends on a predicate.
func (o Opcode) IsConditionalBranch() bool { return o == Brct || o == Brcf }

// IsMemory reports whether the opcode touches memory.
func (o Opcode) IsMemory() bool { return o == Ld || o == St }

// Speculatable reports whether an op with this opcode may be hoisted above a
// branch it is control-dependent on. Stores must not speculate (no predicated
// stores in this study), branches and copies stay put, and Ret terminates the
// function.
func (o Opcode) Speculatable() bool {
	switch o {
	case St, Ret, Brct, Brcf, Bru, Copy:
		return false
	case Call:
		// A call is a scheduling barrier with its own latency (see
		// machine.Model.Latency): it clobbers memory and transfers control,
		// so it never moves above a branch.
		return false
	}
	return true
}

// Cond is the comparison relation of a Cmpp op.
type Cond uint8

// Comparison relations.
const (
	CondEQ Cond = iota
	CondNE
	CondLT
	CondLE
	CondGT
	CondGE
)

// String returns the relation as an infix symbol.
func (c Cond) String() string {
	switch c {
	case CondEQ:
		return "=="
	case CondNE:
		return "!="
	case CondLT:
		return "<"
	case CondLE:
		return "<="
	case CondGT:
		return ">"
	case CondGE:
		return ">="
	default:
		return "?"
	}
}

// Op is a single operation. Ops are identified within a Function by ID;
// duplicates created by tail duplication share an Orig ID, which is how the
// scheduler detects dominator parallelism.
type Op struct {
	ID     int    // unique within the function
	Orig   int    // ID of the op this was duplicated from (== ID for originals)
	Opcode Opcode
	Dests  []Reg
	Srcs   []Reg
	Imm    int64   // immediate for MovI, address offset for Ld/St
	Cond   Cond    // relation for Cmpp
	Target BlockID // branch/Pbr target block
	// Prob is the probability, fixed by the program generator, that this
	// branch is taken given that it executes (conditional branches only).
	// The stochastic interpreter draws against it to produce profiles.
	Prob float64
	// Callee names the function a Call op targets ("" for the legacy opaque
	// call). Srcs carry the argument registers, matched positionally to the
	// callee's Params; Dests receive the callee's Rets on return.
	Callee string
	// Renamed marks ops whose destination was renamed by the scheduler to
	// permit speculation; used only for reporting.
	Renamed bool
	// Guard predicates the op (hyperblock-style if-conversion): the op
	// executes, and its definitions take effect, only when the predicate
	// register is true. NoReg means unconditional. Branches use explicit
	// predicate sources instead.
	Guard Reg
}

// Guarded reports whether the op carries an if-conversion predicate.
func (op *Op) Guarded() bool { return op.Guard.IsValid() }

// IsBranch reports whether the op is a branch.
func (op *Op) IsBranch() bool { return op.Opcode.IsBranch() }

// Clone returns a copy of op with the given new ID, preserving Orig so
// duplicate detection works across tail duplication.
func (op *Op) Clone(newID int) *Op {
	c := *op
	c.ID = newID
	c.Orig = op.Orig
	c.Dests = append([]Reg(nil), op.Dests...)
	c.Srcs = append([]Reg(nil), op.Srcs...)
	return &c
}

// String renders the op in the paper's style, e.g. "r3 = ADD r1, r2" or
// "BRCT b2, p1 -> bb4"; guarded ops append "? p" as in the paper's Fig. 5.
func (op *Op) String() string {
	s := op.base()
	if op.Guarded() {
		return s + " ? " + op.Guard.String()
	}
	return s
}

func (op *Op) base() string {
	var b strings.Builder
	if len(op.Dests) > 0 {
		for i, d := range op.Dests {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(d.String())
		}
		b.WriteString(" = ")
	}
	b.WriteString(op.Opcode.String())
	switch op.Opcode {
	case MovI:
		fmt.Fprintf(&b, " %d", op.Imm)
		return b.String()
	case Cmpp:
		fmt.Fprintf(&b, " (%s %s %s)", op.Srcs[0], op.Cond, op.Srcs[1])
		return b.String()
	case Ld:
		fmt.Fprintf(&b, " [%s+%d]", op.Srcs[0], op.Imm)
		return b.String()
	case St:
		fmt.Fprintf(&b, " [%s+%d], %s", op.Srcs[0], op.Imm, op.Srcs[1])
		return b.String()
	case Call:
		if op.Callee != "" {
			fmt.Fprintf(&b, " @%s", op.Callee)
		}
	}
	for i, s := range op.Srcs {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, " %s", s)
	}
	if op.Opcode.IsBranch() || op.Opcode == Pbr {
		fmt.Fprintf(&b, " -> bb%d", op.Target)
	}
	return b.String()
}
