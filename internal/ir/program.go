package ir

import "fmt"

// OrigStride partitions the Orig ID space of a multi-function program into
// per-function namespaces. Function k of a Program owns the block/op Orig
// range [(k+1)*OrigStride, (k+2)*OrigStride); the root function a body is
// spliced into keeps its native Origs below OrigStride. The inliner stamps
// spliced clones with namespaced Origs and the interpreter keys its branch
// oracle and block traces the same way, so an inlined program replays the
// exact oracle decisions of the original and the SEM differential rules can
// compare traces block for block. No function approaches a million blocks or
// ops, so the stride never collides with native IDs.
const OrigStride = 1 << 20

// Program is a multi-function compilation unit with a resolved call graph.
// Function order is the program's canonical order: it fixes each function's
// Orig namespace (OrigBase) and the iteration order of every interprocedural
// pass, keeping compilation deterministic.
type Program struct {
	Funcs []*Function

	byName map[string]int
}

// NewProgram builds a program from funcs, resolving the call graph by name.
// It rejects duplicate function names and calls to functions outside the
// program (a Call with an empty Callee stays a legal opaque barrier).
func NewProgram(funcs []*Function) (*Program, error) {
	p := &Program{Funcs: funcs, byName: make(map[string]int, len(funcs))}
	for i, f := range funcs {
		if _, dup := p.byName[f.Name]; dup {
			return nil, fmt.Errorf("program: duplicate function %q", f.Name)
		}
		p.byName[f.Name] = i
	}
	for _, f := range funcs {
		for _, b := range f.Blocks {
			for _, op := range b.Ops {
				if op.Opcode != Call || op.Callee == "" {
					continue
				}
				ci, ok := p.byName[op.Callee]
				if !ok {
					return nil, fmt.Errorf("program: %s calls undefined function %q", f.Name, op.Callee)
				}
				callee := funcs[ci]
				if len(op.Srcs) != len(callee.Params) || len(op.Dests) != len(callee.Rets) {
					return nil, fmt.Errorf("program: %s calls %q with %d args/%d results, want %d/%d",
						f.Name, op.Callee, len(op.Srcs), len(op.Dests),
						len(callee.Params), len(callee.Rets))
				}
			}
		}
	}
	return p, nil
}

// Lookup returns the function named name, or nil.
func (p *Program) Lookup(name string) *Function {
	if p == nil {
		return nil
	}
	if i, ok := p.byName[name]; ok {
		return p.Funcs[i]
	}
	return nil
}

// Index returns the program index of the function named name, or -1.
func (p *Program) Index(name string) int {
	if p == nil {
		return -1
	}
	if i, ok := p.byName[name]; ok {
		return i
	}
	return -1
}

// OrigBase returns the base of the Orig namespace owned by function index i.
func (p *Program) OrigBase(i int) int { return (i + 1) * OrigStride }

// CallSite is one resolved call: op Op in block Block of function Caller
// targets function Callee (both program indices).
type CallSite struct {
	Caller int
	Block  BlockID
	OpIdx  int
	Op     *Op
	Callee int
}

// CallSites returns every resolved call site in program order: functions in
// program order, blocks in ID order, ops in block order. Unresolved opaque
// calls (empty Callee) are skipped.
func (p *Program) CallSites() []CallSite {
	var out []CallSite
	for fi, f := range p.Funcs {
		for _, b := range f.Blocks {
			for oi, op := range b.Ops {
				if op.Opcode != Call || op.Callee == "" {
					continue
				}
				if ci, ok := p.byName[op.Callee]; ok {
					out = append(out, CallSite{Caller: fi, Block: b.ID, OpIdx: oi, Op: op, Callee: ci})
				}
			}
		}
	}
	return out
}

// Callees returns the program indices of the functions that fn (by program
// index) calls, transitively, in first-reached program order. fn itself is
// included only if it is reachable from itself (recursion). The result is
// the set of bodies whose content can influence compiling fn with inlining
// enabled, so content-addressed cache keys hash exactly this slice.
func (p *Program) Callees(fn int) []int {
	var out []int
	seen := make(map[int]bool)
	work := []int{fn}
	for len(work) > 0 {
		cur := work[0]
		work = work[1:]
		for _, b := range p.Funcs[cur].Blocks {
			for _, op := range b.Ops {
				if op.Opcode != Call || op.Callee == "" {
					continue
				}
				ci, ok := p.byName[op.Callee]
				if !ok || seen[ci] {
					continue
				}
				seen[ci] = true
				out = append(out, ci)
				work = append(work, ci)
			}
		}
	}
	return out
}
