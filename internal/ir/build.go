package ir

// This file provides small construction helpers used by the program
// generator, the hand-built paper example, and tests. Each helper allocates
// the op from the function (fresh ID) and appends it to the block.

// EmitMovI appends "dest = MOVI imm".
func (f *Function) EmitMovI(b *Block, dest Reg, imm int64) *Op {
	op := f.NewOp(MovI)
	op.Dests = []Reg{dest}
	op.Imm = imm
	b.Ops = append(b.Ops, op)
	return op
}

// EmitALU appends a two-source ALU op "dest = opc s1, s2".
func (f *Function) EmitALU(b *Block, opc Opcode, dest, s1, s2 Reg) *Op {
	op := f.NewOp(opc)
	op.Dests = []Reg{dest}
	op.Srcs = []Reg{s1, s2}
	b.Ops = append(b.Ops, op)
	return op
}

// EmitMov appends "dest = MOV src".
func (f *Function) EmitMov(b *Block, dest, src Reg) *Op {
	op := f.NewOp(Mov)
	op.Dests = []Reg{dest}
	op.Srcs = []Reg{src}
	b.Ops = append(b.Ops, op)
	return op
}

// EmitLd appends "dest = LD [base+off]".
func (f *Function) EmitLd(b *Block, dest, base Reg, off int64) *Op {
	op := f.NewOp(Ld)
	op.Dests = []Reg{dest}
	op.Srcs = []Reg{base}
	op.Imm = off
	b.Ops = append(b.Ops, op)
	return op
}

// EmitSt appends "ST [base+off], val".
func (f *Function) EmitSt(b *Block, base Reg, off int64, val Reg) *Op {
	op := f.NewOp(St)
	op.Srcs = []Reg{base, val}
	op.Imm = off
	b.Ops = append(b.Ops, op)
	return op
}

// EmitCmpp appends "p[, pbar] = CMPP (s1 cond s2)". Pass NoReg for pbar to
// omit the complement destination.
func (f *Function) EmitCmpp(b *Block, p, pbar Reg, cond Cond, s1, s2 Reg) *Op {
	op := f.NewOp(Cmpp)
	op.Dests = []Reg{p}
	if pbar.IsValid() {
		op.Dests = append(op.Dests, pbar)
	}
	op.Srcs = []Reg{s1, s2}
	op.Cond = cond
	b.Ops = append(b.Ops, op)
	return op
}

// EmitPbr appends "btr = PBR -> target".
func (f *Function) EmitPbr(b *Block, btr Reg, target BlockID) *Op {
	op := f.NewOp(Pbr)
	op.Dests = []Reg{btr}
	op.Target = target
	b.Ops = append(b.Ops, op)
	return op
}

// EmitBrct appends "BRCT btr, p -> target" taken with probability prob.
func (f *Function) EmitBrct(b *Block, btr, p Reg, target BlockID, prob float64) *Op {
	op := f.NewOp(Brct)
	op.Srcs = []Reg{btr, p}
	op.Target = target
	op.Prob = prob
	b.Ops = append(b.Ops, op)
	return op
}

// EmitBrcf appends "BRCF btr, p -> target" taken with probability prob.
func (f *Function) EmitBrcf(b *Block, btr, p Reg, target BlockID, prob float64) *Op {
	op := f.NewOp(Brcf)
	op.Srcs = []Reg{btr, p}
	op.Target = target
	op.Prob = prob
	b.Ops = append(b.Ops, op)
	return op
}

// EmitBru appends "BRU btr -> target"; the block must not also fall through.
func (f *Function) EmitBru(b *Block, btr Reg, target BlockID) *Op {
	op := f.NewOp(Bru)
	if btr.IsValid() {
		op.Srcs = []Reg{btr}
	}
	op.Target = target
	op.Prob = 1
	b.Ops = append(b.Ops, op)
	return op
}

// EmitCall appends "dests = CALL @callee srcs". The srcs are matched
// positionally to the callee's Params and the dests to its Rets; the call
// remains a scheduling barrier unless the inliner splices the callee in.
func (f *Function) EmitCall(b *Block, callee string, dests, srcs []Reg) *Op {
	op := f.NewOp(Call)
	op.Callee = callee
	op.Dests = append([]Reg(nil), dests...)
	op.Srcs = append([]Reg(nil), srcs...)
	b.Ops = append(b.Ops, op)
	return op
}

// EmitRet appends a RET, marking the block as a function exit.
func (f *Function) EmitRet(b *Block) *Op {
	op := f.NewOp(Ret)
	b.Ops = append(b.Ops, op)
	b.FallThrough = NoBlock
	return op
}
