// Package ir defines the intermediate representation used throughout the
// treegion compiler: virtual registers, operations (Ops), basic blocks, and
// functions. The IR is deliberately close to the HP Labs PlayDoh flavour the
// paper schedules for: general-purpose integer registers ("r"), predicate
// registers ("p"), branch-target registers ("b"), and floating-point
// registers ("f"), with compare-to-predicate (CMPP), prepare-to-branch (PBR)
// and predicated branch (BRCT/BRCF/BRU) operations.
package ir

import "fmt"

// RegClass identifies a virtual register file.
type RegClass uint8

// Register classes. ClassNone marks the zero Reg, used where an operand slot
// is absent.
const (
	ClassNone RegClass = iota
	ClassGPR           // general-purpose integer ("r")
	ClassPred          // predicate ("p")
	ClassBTR           // branch target ("b")
	ClassFPR           // floating point ("f")
)

// String returns the single-letter prefix the paper uses for the class.
func (c RegClass) String() string {
	switch c {
	case ClassGPR:
		return "r"
	case ClassPred:
		return "p"
	case ClassBTR:
		return "b"
	case ClassFPR:
		return "f"
	default:
		return "?"
	}
}

// Reg is a virtual register: a class plus an index within that class's file.
// Registers are unbounded; the paper's study pre-dates register allocation
// and we follow it.
type Reg struct {
	Class RegClass
	Num   int
}

// NoReg is the absent register.
var NoReg = Reg{}

// IsValid reports whether r names an actual register.
func (r Reg) IsValid() bool { return r.Class != ClassNone }

// String formats the register in the paper's style, e.g. "r3", "p1", "b2".
func (r Reg) String() string {
	if !r.IsValid() {
		return "_"
	}
	return fmt.Sprintf("%s%d", r.Class, r.Num)
}

// GPR returns the n-th general-purpose register.
func GPR(n int) Reg { return Reg{ClassGPR, n} }

// Pred returns the n-th predicate register.
func Pred(n int) Reg { return Reg{ClassPred, n} }

// BTR returns the n-th branch-target register.
func BTR(n int) Reg { return Reg{ClassBTR, n} }

// FPR returns the n-th floating-point register.
func FPR(n int) Reg { return Reg{ClassFPR, n} }
