package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{GPR(3), "r3"},
		{Pred(1), "p1"},
		{BTR(2), "b2"},
		{FPR(0), "f0"},
		{NoReg, "_"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestNoRegInvalid(t *testing.T) {
	if NoReg.IsValid() {
		t.Fatal("NoReg must be invalid")
	}
	if !GPR(0).IsValid() {
		t.Fatal("r0 must be valid")
	}
}

func TestOpcodeClassification(t *testing.T) {
	branches := []Opcode{Brct, Brcf, Bru}
	for _, o := range branches {
		if !o.IsBranch() {
			t.Errorf("%v should be a branch", o)
		}
	}
	if Brct.IsConditionalBranch() != true || Bru.IsConditionalBranch() != false {
		t.Error("conditional-branch classification wrong")
	}
	for _, o := range []Opcode{Add, Ld, Cmpp, Pbr, Mov, MovI, FDiv} {
		if !o.Speculatable() {
			t.Errorf("%v should be speculatable", o)
		}
	}
	for _, o := range []Opcode{St, Call, Ret, Brct, Brcf, Bru, Copy} {
		if o.Speculatable() {
			t.Errorf("%v should not be speculatable", o)
		}
	}
	if !Ld.IsMemory() || !St.IsMemory() || Add.IsMemory() {
		t.Error("memory classification wrong")
	}
}

func TestOpcodeStringsDistinct(t *testing.T) {
	seen := make(map[string]Opcode)
	for o := Nop; o < numOpcodes; o++ {
		s := o.String()
		if s == "" || strings.HasPrefix(s, "OP(") {
			t.Errorf("opcode %d has no name", o)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("opcodes %v and %v share name %q", prev, o, s)
		}
		seen[s] = o
	}
}

func TestNewRegDistinct(t *testing.T) {
	f := NewFunction("t")
	a, b := f.NewReg(ClassGPR), f.NewReg(ClassGPR)
	p := f.NewReg(ClassPred)
	if a == b {
		t.Fatal("NewReg returned duplicate GPR")
	}
	if p.Class != ClassPred {
		t.Fatal("wrong class")
	}
	f.NoteReg(GPR(10))
	if r := f.NewReg(ClassGPR); r.Num != 11 {
		t.Fatalf("NoteReg not honoured: got %v", r)
	}
}

func TestBlockSuccsOrder(t *testing.T) {
	f := NewFunction("t")
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b3 := f.NewBlock()
	p := f.NewReg(ClassPred)
	f.EmitBrct(b0, NoReg, p, b1.ID, 0.5)
	f.EmitBrct(b0, NoReg, p, b2.ID, 0.5)
	b0.FallThrough = b3.ID

	got := b0.Succs()
	want := []BlockID{b1.ID, b2.ID, b3.ID}
	if len(got) != len(want) {
		t.Fatalf("Succs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Succs = %v, want %v", got, want)
		}
	}
	if b0.NumSuccs() != 3 {
		t.Fatalf("NumSuccs = %d, want 3", b0.NumSuccs())
	}
	if len(b0.Branches()) != 2 {
		t.Fatalf("Branches = %d, want 2", len(b0.Branches()))
	}
}

func TestReplaceSucc(t *testing.T) {
	f := NewFunction("t")
	b0, b1, b2 := f.NewBlock(), f.NewBlock(), f.NewBlock()
	p := f.NewReg(ClassPred)
	f.EmitBrct(b0, NoReg, p, b1.ID, 0.5)
	b0.FallThrough = b1.ID
	if !b0.ReplaceSucc(b1.ID, b2.ID) {
		t.Fatal("ReplaceSucc reported no change")
	}
	for _, s := range b0.Succs() {
		if s != b2.ID {
			t.Fatalf("successor %v not rewritten", s)
		}
	}
	if b0.ReplaceSucc(b1.ID, b2.ID) {
		t.Fatal("ReplaceSucc should report no change on second call")
	}
}

func TestValidateCatchesBadStructure(t *testing.T) {
	// Branch to a missing block.
	f := NewFunction("bad1")
	b0 := f.NewBlock()
	f.EmitBrct(b0, NoReg, f.NewReg(ClassPred), BlockID(99), 0.5)
	if err := f.Validate(); err == nil {
		t.Error("missing-target branch not caught")
	}

	// Non-branch op after a branch.
	f2 := NewFunction("bad2")
	c0, c1 := f2.NewBlock(), f2.NewBlock()
	f2.EmitBrct(c0, NoReg, f2.NewReg(ClassPred), c1.ID, 0.5)
	f2.EmitALU(c0, Add, f2.NewReg(ClassGPR), GPR(0), GPR(1))
	c0.FallThrough = c1.ID
	f2.EmitRet(c1)
	if err := f2.Validate(); err == nil {
		t.Error("op-after-branch not caught")
	}

	// Duplicate successors.
	f3 := NewFunction("bad3")
	d0, d1 := f3.NewBlock(), f3.NewBlock()
	f3.EmitBrct(d0, NoReg, f3.NewReg(ClassPred), d1.ID, 0.5)
	d0.FallThrough = d1.ID
	f3.EmitRet(d1)
	if err := f3.Validate(); err == nil {
		t.Error("duplicate successor not caught")
	}

	// Fallthrough after BRU.
	f4 := NewFunction("bad4")
	e0, e1 := f4.NewBlock(), f4.NewBlock()
	f4.EmitBru(e0, NoReg, e1.ID)
	e0.FallThrough = e1.ID
	f4.EmitRet(e1)
	if err := f4.Validate(); err == nil {
		t.Error("fallthrough-after-BRU not caught")
	}
}

func TestValidateAcceptsDiamond(t *testing.T) {
	f := NewFunction("diamond")
	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	p := f.NewReg(ClassPred)
	r := f.NewReg(ClassGPR)
	f.EmitCmpp(b0, p, NoReg, CondGT, r, r)
	f.EmitBrct(b0, NoReg, p, b1.ID, 0.5)
	b0.FallThrough = b2.ID
	f.EmitBru(b1, NoReg, b3.ID)
	b2.FallThrough = b3.ID
	f.EmitRet(b3)
	if err := f.Validate(); err != nil {
		t.Fatalf("valid diamond rejected: %v", err)
	}
}

func TestCloneOpPreservesOrig(t *testing.T) {
	f := NewFunction("t")
	b := f.NewBlock()
	op := f.EmitALU(b, Add, GPR(2), GPR(0), GPR(1))
	c := f.CloneOp(op)
	if c.ID == op.ID {
		t.Fatal("clone shares ID")
	}
	if c.Orig != op.ID {
		t.Fatalf("clone Orig = %d, want %d", c.Orig, op.ID)
	}
	c2 := f.CloneOp(c)
	if c2.Orig != op.ID {
		t.Fatalf("clone-of-clone Orig = %d, want %d", c2.Orig, op.ID)
	}
	// Mutating the clone must not alias the original's operand slices.
	c.Srcs[0] = GPR(7)
	if op.Srcs[0] == GPR(7) {
		t.Fatal("clone aliases original srcs")
	}
}

func TestDuplicateBlock(t *testing.T) {
	f := NewFunction("t")
	b0, b1 := f.NewBlock(), f.NewBlock()
	f.EmitALU(b0, Add, GPR(2), GPR(0), GPR(1))
	f.EmitSt(b0, GPR(3), 8, GPR(2))
	b0.FallThrough = b1.ID
	f.EmitRet(b1)

	d := f.DuplicateBlock(b0)
	if d.Orig != b0.ID {
		t.Fatalf("dup Orig = %d, want %d", d.Orig, b0.ID)
	}
	if d.FallThrough != b1.ID {
		t.Fatal("dup lost fallthrough")
	}
	if len(d.Ops) != len(b0.Ops) {
		t.Fatalf("dup has %d ops, want %d", len(d.Ops), len(b0.Ops))
	}
	for i := range d.Ops {
		if d.Ops[i].ID == b0.Ops[i].ID {
			t.Fatal("dup shares op IDs with original")
		}
		if d.Ops[i].Orig != b0.Ops[i].ID {
			t.Fatal("dup op Orig wrong")
		}
	}
	if f.NumOps() != 5 {
		t.Fatalf("NumOps = %d, want 5", f.NumOps())
	}
}

func TestOpStringFormats(t *testing.T) {
	f := NewFunction("t")
	b := f.NewBlock()
	cases := []struct {
		op   *Op
		want string
	}{
		{f.EmitMovI(b, GPR(4), 1), "r4 = MOVI 1"},
		{f.EmitALU(b, Add, GPR(3), GPR(1), GPR(2)), "r3 = ADD r1, r2"},
		{f.EmitLd(b, GPR(1), GPR(0), 16), "r1 = LD [r0+16]"},
		{f.EmitSt(b, GPR(0), 8, GPR(1)), "ST [r0+8], r1"},
		{f.EmitCmpp(b, Pred(1), Pred(2), CondGT, GPR(1), GPR(2)), "p1, p2 = CMPP (r1 > r2)"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// Property: register constructors round-trip through String uniquely for
// distinct numbers.
func TestRegStringInjective(t *testing.T) {
	fn := func(a, b uint8) bool {
		ra, rb := GPR(int(a)), GPR(int(b))
		return (a == b) == (ra.String() == rb.String())
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFunctionStringMentionsDups(t *testing.T) {
	f := NewFunction("t")
	b0 := f.NewBlock()
	f.EmitRet(b0)
	d := f.DuplicateBlock(b0)
	_ = d
	s := f.String()
	if !strings.Contains(s, "dup of bb0") {
		t.Fatalf("String() missing dup annotation:\n%s", s)
	}
}
