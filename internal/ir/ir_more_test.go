package ir

import (
	"strings"
	"testing"
)

func TestCloneDeepCopies(t *testing.T) {
	f := NewFunction("orig")
	b0, b1 := f.NewBlock(), f.NewBlock()
	op := f.EmitALU(b0, Add, GPR(2), GPR(0), GPR(1))
	b0.FallThrough = b1.ID
	f.EmitRet(b1)

	c := f.Clone()
	// Mutating the clone must not touch the original.
	c.Block(0).Ops[0].Dests[0] = GPR(9)
	c.Block(0).FallThrough = NoBlock
	if op.Dests[0] != GPR(2) {
		t.Fatal("clone shares op operand storage")
	}
	if b0.FallThrough != b1.ID {
		t.Fatal("clone shares block metadata")
	}
	// IDs and allocation state carry over: fresh registers don't collide.
	r1 := f.NewReg(ClassGPR)
	r2 := c.NewReg(ClassGPR)
	if r1 != r2 {
		t.Fatalf("allocator state differs after clone: %v vs %v", r1, r2)
	}
	if c.Entry != f.Entry || len(c.Blocks) != len(f.Blocks) {
		t.Fatal("structure differs")
	}
}

func TestGuardedString(t *testing.T) {
	f := NewFunction("g")
	b := f.NewBlock()
	op := f.EmitMovI(b, GPR(4), 3)
	op.Guard = Pred(1)
	if got := op.String(); got != "r4 = MOVI 3 ? p1" {
		t.Fatalf("String() = %q", got)
	}
	if !op.Guarded() {
		t.Fatal("Guarded() false")
	}
}

func TestBranchString(t *testing.T) {
	f := NewFunction("b")
	b0, b1 := f.NewBlock(), f.NewBlock()
	op := f.EmitBrct(b0, BTR(2), Pred(0), b1.ID, 0.25)
	if got := op.String(); !strings.Contains(got, "BRCT") || !strings.Contains(got, "-> bb1") {
		t.Fatalf("String() = %q", got)
	}
	f.EmitRet(b1)
}

func TestValidateRetWithSuccessors(t *testing.T) {
	f := NewFunction("bad")
	b0, b1 := f.NewBlock(), f.NewBlock()
	f.EmitRet(b0)
	b0.FallThrough = b1.ID // RET blocks must not fall through
	f.EmitRet(b1)
	if err := f.Validate(); err == nil {
		t.Fatal("RET with a fallthrough accepted")
	}
}

func TestNumSuccsMatchesSuccs(t *testing.T) {
	f := NewFunction("n")
	b0 := f.NewBlock()
	targets := make([]*Block, 3)
	for i := range targets {
		targets[i] = f.NewBlock()
		f.EmitRet(targets[i])
	}
	p := f.NewReg(ClassPred)
	f.EmitBrct(b0, NoReg, p, targets[0].ID, 0.2)
	f.EmitBrct(b0, NoReg, p, targets[1].ID, 0.2)
	b0.FallThrough = targets[2].ID
	if b0.NumSuccs() != len(b0.Succs()) {
		t.Fatalf("NumSuccs %d != len(Succs) %d", b0.NumSuccs(), len(b0.Succs()))
	}
}

func TestSpeculatableGuardInteraction(t *testing.T) {
	// Guarded ALU ops remain speculatable by opcode (the guard is a data
	// dependence); guarded stores remain non-speculatable.
	if !Add.Speculatable() {
		t.Fatal("ADD must be speculatable")
	}
	if St.Speculatable() {
		t.Fatal("ST must not be speculatable")
	}
}
