package ir

import (
	"strings"
	"testing"
)

// twoFuncs builds main -> add with a matching two-arg one-ret convention.
func twoFuncs(t *testing.T) (*Function, *Function) {
	t.Helper()
	add := NewFunction("add")
	pa := add.NewReg(ClassGPR)
	pb := add.NewReg(ClassGPR)
	add.Params = []Reg{pa, pb}
	ab := add.NewBlock()
	s := add.NewReg(ClassGPR)
	add.EmitALU(ab, Add, s, pa, pb)
	add.Rets = []Reg{s}
	add.EmitRet(ab)

	main := NewFunction("main")
	mb := main.NewBlock()
	r0 := main.NewReg(ClassGPR)
	r1 := main.NewReg(ClassGPR)
	r2 := main.NewReg(ClassGPR)
	main.EmitMovI(mb, r0, 7)
	main.EmitMovI(mb, r1, 5)
	main.EmitCall(mb, "add", []Reg{r2}, []Reg{r0, r1})
	main.EmitSt(mb, r0, 0, r2)
	main.EmitRet(mb)
	return main, add
}

func TestNewProgramResolvesCalls(t *testing.T) {
	main, add := twoFuncs(t)
	p, err := NewProgram([]*Function{main, add})
	if err != nil {
		t.Fatal(err)
	}
	if p.Lookup("add") != add || p.Lookup("nope") != nil {
		t.Fatal("Lookup wrong")
	}
	if p.Index("main") != 0 || p.Index("add") != 1 || p.Index("nope") != -1 {
		t.Fatal("Index wrong")
	}
	if p.OrigBase(0) != OrigStride || p.OrigBase(1) != 2*OrigStride {
		t.Fatal("OrigBase wrong")
	}
	sites := p.CallSites()
	if len(sites) != 1 || sites[0].Caller != 0 || sites[0].Callee != 1 {
		t.Fatalf("CallSites = %+v", sites)
	}
	if cs := p.Callees(0); len(cs) != 1 || cs[0] != 1 {
		t.Fatalf("Callees(main) = %v", cs)
	}
	if cs := p.Callees(1); len(cs) != 0 {
		t.Fatalf("Callees(add) = %v", cs)
	}
}

func TestNewProgramRejections(t *testing.T) {
	main, add := twoFuncs(t)
	if _, err := NewProgram([]*Function{main, main}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate names: err = %v", err)
	}
	if _, err := NewProgram([]*Function{main}); err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Fatalf("undefined callee: err = %v", err)
	}
	// Arity mismatch: drop one argument from the call.
	for _, b := range main.Blocks {
		for _, op := range b.Ops {
			if op.Opcode == Call {
				op.Srcs = op.Srcs[:1]
			}
		}
	}
	if _, err := NewProgram([]*Function{main, add}); err == nil || !strings.Contains(err.Error(), "args") {
		t.Fatalf("arity mismatch: err = %v", err)
	}
}

func TestNewProgramOpaqueCallAllowed(t *testing.T) {
	f := NewFunction("solo")
	b := f.NewBlock()
	r := f.NewReg(ClassGPR)
	f.EmitMovI(b, r, 1)
	f.EmitCall(b, "", nil, []Reg{r})
	f.EmitRet(b)
	if _, err := NewProgram([]*Function{f}); err != nil {
		t.Fatalf("opaque call rejected: %v", err)
	}
}

func TestCalleesTransitive(t *testing.T) {
	// chain: a -> b -> c; Callees(a) must surface both, first-reached order.
	mk := func(name, callee string) *Function {
		f := NewFunction(name)
		p0 := f.NewReg(ClassGPR)
		p1 := f.NewReg(ClassGPR)
		f.Params = []Reg{p0, p1}
		b := f.NewBlock()
		r := f.NewReg(ClassGPR)
		if callee != "" {
			f.EmitCall(b, callee, []Reg{r}, []Reg{p0, p1})
		} else {
			f.EmitALU(b, Add, r, p0, p1)
		}
		f.Rets = []Reg{r}
		f.EmitRet(b)
		return f
	}
	a, bf, cf := mk("a", "b"), mk("b", "c"), mk("c", "")
	p, err := NewProgram([]*Function{a, bf, cf})
	if err != nil {
		t.Fatal(err)
	}
	cs := p.Callees(0)
	if len(cs) != 2 || cs[0] != 1 || cs[1] != 2 {
		t.Fatalf("Callees(a) = %v, want [1 2]", cs)
	}
}

func TestSnapshotKeepsConvention(t *testing.T) {
	_, add := twoFuncs(t)
	got, err := add.Snapshot().Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Params) != 2 || got.Params[0] != add.Params[0] {
		t.Fatalf("Params lost: %v", got.Params)
	}
	if len(got.Rets) != 1 || got.Rets[0] != add.Rets[0] {
		t.Fatalf("Rets lost: %v", got.Rets)
	}
}
