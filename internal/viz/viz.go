// Package viz renders control-flow graphs and region partitions to Graphviz
// DOT, for inspecting what the region formers built ("dot -Tsvg out.dot").
// Each region becomes a cluster; edge labels carry profile weights; block
// labels show id, original block (for tail duplicates) and op count.
package viz

import (
	"fmt"
	"strings"

	"treegion/internal/ir"
	"treegion/internal/profile"
	"treegion/internal/region"
)

// palette cycles through fill colours for region clusters.
var palette = []string{
	"#dbeafe", "#dcfce7", "#fef9c3", "#fde2e2", "#ede9fe",
	"#cffafe", "#fee2b3", "#e2e8f0",
}

// DOT renders fn with its regions as clusters. prof may be nil (edges then
// carry no weights); regions may be nil (plain CFG).
func DOT(fn *ir.Function, regions []*region.Region, prof *profile.Data) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", fn.Name)
	sb.WriteString("  node [shape=box, fontname=\"monospace\", fontsize=10];\n")

	emitted := make(map[ir.BlockID]bool)
	node := func(indent string, b *ir.Block) {
		label := fmt.Sprintf("bb%d", b.ID)
		if b.Orig != b.ID {
			label += fmt.Sprintf("\\n(dup of bb%d)", b.Orig)
		}
		label += fmt.Sprintf("\\n%d ops", len(b.Ops))
		if prof != nil {
			label += fmt.Sprintf("\\nw=%.0f", prof.BlockWeight(b.ID))
		}
		attrs := ""
		if b.ID == fn.Entry {
			attrs = ", penwidth=2"
		}
		fmt.Fprintf(&sb, "%sbb%d [label=\"%s\"%s];\n", indent, b.ID, label, attrs)
		emitted[b.ID] = true
	}

	for i, r := range regions {
		fmt.Fprintf(&sb, "  subgraph cluster_%d {\n", i)
		fmt.Fprintf(&sb, "    label=\"%s root=bb%d\";\n", r.Kind, r.Root)
		fmt.Fprintf(&sb, "    style=filled; color=\"%s\";\n", palette[i%len(palette)])
		for _, bid := range r.Blocks {
			node("    ", fn.Block(bid))
		}
		sb.WriteString("  }\n")
	}
	for _, b := range fn.Blocks {
		if !emitted[b.ID] {
			node("  ", b)
		}
	}

	for _, b := range fn.Blocks {
		for _, op := range b.Ops {
			if op.IsBranch() {
				edge(&sb, prof, b.ID, op.Target, "taken")
			}
		}
		if b.FallThrough != ir.NoBlock {
			edge(&sb, prof, b.ID, b.FallThrough, "fall")
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func edge(sb *strings.Builder, prof *profile.Data, from, to ir.BlockID, kind string) {
	style := ""
	if kind == "fall" {
		style = ", style=dashed"
	}
	if prof != nil {
		fmt.Fprintf(sb, "  bb%d -> bb%d [label=\"%.0f\"%s];\n", from, to, prof.EdgeWeight(from, to), style)
	} else {
		fmt.Fprintf(sb, "  bb%d -> bb%d [label=\"\"%s];\n", from, to, style)
	}
}
