package viz

import (
	"strings"
	"testing"

	"treegion/internal/cfg"
	"treegion/internal/core"
	"treegion/internal/interp"
	"treegion/internal/progen"
)

func TestDOTOutput(t *testing.T) {
	p, _ := progen.PresetByName("compress")
	prog, err := progen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Funcs[0]
	prof, err := interp.Profile(fn, 1, 20, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	regions := core.Form(fn, cfg.New(fn))
	dot := DOT(fn, regions, prof)

	if !strings.HasPrefix(dot, "digraph") || !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Fatal("not a DOT digraph")
	}
	// One cluster per region, one node per block, every edge present.
	if got := strings.Count(dot, "subgraph cluster_"); got != len(regions) {
		t.Fatalf("%d clusters, want %d", got, len(regions))
	}
	for _, b := range fn.Blocks {
		if !strings.Contains(dot, "bb"+itoa(int(b.ID))+" [label=") {
			t.Fatalf("bb%d missing from DOT", b.ID)
		}
	}
	edges := 0
	for _, b := range fn.Blocks {
		edges += b.NumSuccs()
	}
	if got := strings.Count(dot, " -> "); got != edges {
		t.Fatalf("%d edges in DOT, want %d", got, edges)
	}
	// Entry is highlighted.
	if !strings.Contains(dot, "penwidth=2") {
		t.Fatal("entry block not highlighted")
	}
}

func TestDOTWithoutRegionsOrProfile(t *testing.T) {
	p, _ := progen.PresetByName("li")
	prog, err := progen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Funcs[0]
	dot := DOT(fn, nil, nil)
	if strings.Contains(dot, "cluster_") {
		t.Fatal("clusters without regions")
	}
	if strings.Contains(dot, "w=") {
		t.Fatal("weights without a profile")
	}
	for _, b := range fn.Blocks {
		if !strings.Contains(dot, "bb"+itoa(int(b.ID))+" [label=") {
			t.Fatalf("bb%d missing", b.ID)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}
