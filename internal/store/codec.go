package store

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"treegion/internal/ddg"
	"treegion/internal/eval"
	"treegion/internal/hyper"
	"treegion/internal/ir"
	"treegion/internal/irtext"
	"treegion/internal/machine"
	"treegion/internal/profile"
	"treegion/internal/region"
	"treegion/internal/sched"
	"treegion/internal/telemetry"
	"treegion/internal/verify"
)

// schemaVersion is bumped whenever the payload layout changes. An entry
// with a different schema reads as a miss (another binary's entries are not
// corruption), so mixed-version processes can share one store directory.
const schemaVersion = 2

// payload is the on-disk form of one FunctionResult. The in-memory result
// is a web of pointers (ops shared between blocks, regions and DDG nodes;
// dependence edges form a cyclic Succs/Preds mesh), which gob cannot
// express — so the codec flattens it: the function travels as canonical
// textual IR, regions as (blocks, parents) lists, and each schedule's DDG
// as node/edge records addressing ops positionally. Decode rebuilds the
// exact object graph against the re-parsed function.
type payload struct {
	Schema int

	FnText string

	HasProf   bool
	ProfBlock map[ir.BlockID]float64
	ProfEdge  map[profile.Edge]float64

	Regions []regionRec
	Scheds  []schedRec

	Time, Copies        float64
	OpsBefore, OpsAfter int

	NumRenamed, NumCopies, NumMerged, NumSpeculated int

	Sched sched.Stats
	Hyper hyper.Stats

	HasTrace bool
	Trace    telemetry.TraceSnapshot

	Diagnostics []verify.Diagnostic
}

// regionRec serializes one region as its preorder block list plus the
// parallel parent list (region.Rebuild's input).
type regionRec struct {
	Kind      region.Kind
	Blocks    []ir.BlockID
	Parents   []ir.BlockID
	FromTrace bool
}

// opRef addresses an op positionally: block ID and index within the
// block's op list. Positions survive the irtext round trip (Print emits
// blocks in ID order and ops in block order), unlike op IDs, which Parse
// renumbers.
type opRef struct {
	Block ir.BlockID
	Index int
}

// nodeRec serializes one DDG node.
type nodeRec struct {
	Op        opRef
	Home      ir.BlockID
	Term      bool
	Spec      bool
	Height    int
	ExitCount int
	Weight    float64
}

// edgeRec serializes one dependence edge between node indices.
type edgeRec struct {
	From, To int
	Latency  int
	Kind     ddg.EdgeKind
}

// schedRec serializes one schedule together with its DDG.
type schedRec struct {
	Region int // index into payload.Regions
	Model  machine.Model
	Nodes  []nodeRec
	Edges  []edgeRec

	NumRenamed, NumCopies, NumMerged int

	Cycle  []int
	Length int
}

// encode flattens fr into the gob payload.
func encode(fr *eval.FunctionResult) ([]byte, error) {
	if fr == nil || fr.Fn == nil {
		return nil, fmt.Errorf("store: nil result")
	}
	p := payload{
		Schema:        schemaVersion,
		FnText:        irtext.Print(fr.Fn),
		Time:          fr.Time,
		Copies:        fr.Copies,
		OpsBefore:     fr.OpsBefore,
		OpsAfter:      fr.OpsAfter,
		NumRenamed:    fr.NumRenamed,
		NumCopies:     fr.NumCopies,
		NumMerged:     fr.NumMerged,
		NumSpeculated: fr.NumSpeculated,
		Sched:         fr.Sched,
		Hyper:         fr.Hyper,
		Diagnostics:   fr.Diagnostics,
	}
	if fr.Prof != nil {
		p.HasProf = true
		p.ProfBlock = fr.Prof.Block
		p.ProfEdge = fr.Prof.Edge
	}
	if fr.Trace != nil {
		p.HasTrace = true
		p.Trace = fr.Trace.Snapshot()
	}

	// Positional op index over the function as it prints.
	refOf := make(map[*ir.Op]opRef)
	for _, b := range fr.Fn.Blocks {
		for i, op := range b.Ops {
			refOf[op] = opRef{Block: b.ID, Index: i}
		}
	}
	regionIdx := make(map[*region.Region]int)
	for i, r := range fr.Regions {
		regionIdx[r] = i
		p.Regions = append(p.Regions, regionRec{
			Kind:      r.Kind,
			Blocks:    r.Blocks,
			Parents:   r.Parents(),
			FromTrace: r.FromTrace,
		})
	}
	for _, s := range fr.Schedules {
		if s.Graph == nil || s.Graph.Region == nil {
			return nil, fmt.Errorf("store: schedule without graph")
		}
		ri, ok := regionIdx[s.Graph.Region]
		if !ok {
			return nil, fmt.Errorf("store: schedule region not among result regions")
		}
		rec := schedRec{
			Region:     ri,
			Model:      s.Model,
			NumRenamed: s.Graph.NumRenamed,
			NumCopies:  s.Graph.NumCopies,
			NumMerged:  s.Graph.NumMerged,
			Cycle:      s.Cycle,
			Length:     s.Length,
		}
		for _, n := range s.Graph.Nodes {
			ref, ok := refOf[n.Op]
			if !ok {
				return nil, fmt.Errorf("store: node op not found in function body")
			}
			rec.Nodes = append(rec.Nodes, nodeRec{
				Op:        ref,
				Home:      n.Home,
				Term:      n.Term,
				Spec:      n.Spec,
				Height:    n.Height,
				ExitCount: n.ExitCount,
				Weight:    n.Weight,
			})
		}
		for _, n := range s.Graph.Nodes {
			for _, e := range n.Succs {
				rec.Edges = append(rec.Edges, edgeRec{
					From: n.Index, To: e.To.Index, Latency: e.Latency, Kind: e.Kind,
				})
			}
		}
		p.Scheds = append(p.Scheds, rec)
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&p); err != nil {
		return nil, fmt.Errorf("store: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// errSchemaSkew marks an entry written under a different payload schema: a
// clean miss, not corruption.
var errSchemaSkew = fmt.Errorf("store: schema skew")

// decode revives a FunctionResult from the gob payload. Every index is
// validated before use: a corrupt entry must surface as an error (which the
// store turns into a miss), never as a panic in some later consumer.
func decode(data []byte) (*eval.FunctionResult, error) {
	var p payload
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&p); err != nil {
		return nil, fmt.Errorf("store: decode: %w", err)
	}
	if p.Schema != schemaVersion {
		return nil, errSchemaSkew
	}
	fn, err := irtext.Parse(p.FnText)
	if err != nil {
		return nil, fmt.Errorf("store: decode function: %w", err)
	}
	fr := &eval.FunctionResult{
		Fn:            fn,
		Time:          p.Time,
		Copies:        p.Copies,
		OpsBefore:     p.OpsBefore,
		OpsAfter:      p.OpsAfter,
		NumRenamed:    p.NumRenamed,
		NumCopies:     p.NumCopies,
		NumMerged:     p.NumMerged,
		NumSpeculated: p.NumSpeculated,
		Sched:         p.Sched,
		Hyper:         p.Hyper,
		Diagnostics:   p.Diagnostics,
	}
	if p.HasProf {
		prof := profile.New()
		for b, w := range p.ProfBlock {
			prof.Block[b] = w
		}
		for e, w := range p.ProfEdge {
			prof.Edge[e] = w
		}
		fr.Prof = prof
	}
	if p.HasTrace {
		fr.Trace = p.Trace.Restore()
	}
	for _, rec := range p.Regions {
		r, err := region.Rebuild(fn, rec.Kind, rec.Blocks, rec.Parents, rec.FromTrace)
		if err != nil {
			return nil, err
		}
		fr.Regions = append(fr.Regions, r)
	}
	for _, rec := range p.Scheds {
		if rec.Region < 0 || rec.Region >= len(fr.Regions) {
			return nil, fmt.Errorf("store: schedule region %d out of range", rec.Region)
		}
		if err := rec.Model.Validate(); err != nil {
			return nil, err
		}
		nodes := make([]ddg.NodeSpec, len(rec.Nodes))
		for i, n := range rec.Nodes {
			if n.Op.Block < 0 || int(n.Op.Block) >= len(fn.Blocks) {
				return nil, fmt.Errorf("store: node op block bb%d out of range", n.Op.Block)
			}
			b := fn.Block(n.Op.Block)
			if n.Op.Index < 0 || n.Op.Index >= len(b.Ops) {
				return nil, fmt.Errorf("store: node op index %d out of range in bb%d", n.Op.Index, n.Op.Block)
			}
			nodes[i] = ddg.NodeSpec{
				Op:        b.Ops[n.Op.Index],
				Home:      n.Home,
				Term:      n.Term,
				Spec:      n.Spec,
				Height:    n.Height,
				ExitCount: n.ExitCount,
				Weight:    n.Weight,
			}
		}
		edges := make([]ddg.EdgeSpec, len(rec.Edges))
		for i, e := range rec.Edges {
			edges[i] = ddg.EdgeSpec{From: e.From, To: e.To, Latency: e.Latency, Kind: e.Kind}
		}
		g, err := ddg.Restore(fn, fr.Regions[rec.Region], nodes, edges,
			rec.NumRenamed, rec.NumCopies, rec.NumMerged)
		if err != nil {
			return nil, err
		}
		if len(rec.Cycle) != len(nodes) {
			return nil, fmt.Errorf("store: %d cycles for %d nodes", len(rec.Cycle), len(nodes))
		}
		for _, c := range rec.Cycle {
			if c < 0 || c >= rec.Length {
				return nil, fmt.Errorf("store: issue cycle %d outside schedule length %d", c, rec.Length)
			}
		}
		if rec.Length < 0 || (len(nodes) == 0 && rec.Length != 0) {
			return nil, fmt.Errorf("store: empty schedule with length %d", rec.Length)
		}
		fr.Schedules = append(fr.Schedules, &sched.Schedule{
			Graph:  g,
			Model:  rec.Model,
			Cycle:  rec.Cycle,
			Length: rec.Length,
		})
	}
	return fr, nil
}
