package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"
	"sync"

	"treegion/internal/ddg"
	"treegion/internal/eval"
	"treegion/internal/ir"
	"treegion/internal/irtext"
	"treegion/internal/machine"
	"treegion/internal/profile"
	"treegion/internal/region"
	"treegion/internal/sched"
	"treegion/internal/telemetry"
	"treegion/internal/verify"
)

// The tgart2 codec: a flat, offset-indexed, little-endian binary layout
// over the compiler's dense ID spaces. The gob codec it replaces spent the
// whole warm-path win re-parsing textual IR and re-linking the result graph
// through reflection; tgart2 instead writes fixed-width records that decode
// straight into the same slabs a cold compile allocates (ir.FuncSnapshot,
// ddg.Restore, region.Rebuild), with near-zero per-node allocations.
//
// Layout (all integers little-endian; offsets relative to the payload
// start, i.e. after the store's magic line):
//
//	u32 schema
//	u32 sectionCount
//	sectionCount × { u32 id, u32 reserved, u64 offset, u64 length }
//	section bytes, contiguous, in table order
//
// Section IDs (1-6 required, 7-8 optional, ids strictly increasing):
//
//	1 ir-text     canonical irtext.Print of the compiled function
//	2 func        binary ir.FuncSnapshot (IDs + allocator counters exact)
//	3 profile     block/edge weights, sorted for byte-stable re-encoding
//	4 regions     preorder (block, parent) lists per region
//	5 schedules   per-schedule DDG node/edge CSR records + issue cycles
//	6 stats       fixed-width scalar result fields
//	7 trace       telemetry.TraceSnapshot (per-phase counters)
//	8 diagnostics verifier diagnostics riding on the result
//
// Decode validates the section table (bounds, contiguity, unknown ids) and
// every index before use: a corrupt entry must surface as an error (which
// the store turns into a quarantined miss), never as a panic in a consumer.
// A different schema number — or a trace/stats section whose field counts
// disagree with this binary's structs — reads as errSchemaSkew: a plain
// miss, because the entry may be perfectly valid for another binary
// version. The function travels as a binary snapshot rather than text so op
// IDs, Orig tags and allocator counters survive exactly (irtext.Parse
// renumbers); the text section is the human-auditable ground truth and the
// input to the content address.
// Schema 4 extended the func section with the interprocedural fields: the
// call-convention Params/Rets register lists, a callee symbol table, and a
// per-op callee symbol index (opRecSize 38 -> 42). Schema-3 entries decode
// as a clean miss.
const schemaVersion = 4

// Section IDs.
const (
	secIRText = 1 + iota
	secFunc
	secProfile
	secRegions
	secSchedules
	secStats
	secTrace
	secDiagnostics
)

const (
	secHdrSize   = 24 // u32 id + u32 reserved + u64 offset + u64 length
	maxSections  = 8
	schedStatsN  = 8 // field count of sched.Stats; drift => schema skew
	hyperStatsN  = 3 // field count of hyper.Stats
	resultStatsN = 8 // scalar fields of FunctionResult in the stats section
)

// Fixed-width record sizes. Each constant is the byte width of one record
// in its bulk array; the encode and decode loops for a record are annotated
// //rec:size <const> and treegion-vet statically proves the writer-call sum
// (encode) and the byte-offset tiling (decode) both equal the constant.
// Changing a layout means touching the loop AND the constant — the vet gate
// fails on either half alone.
const (
	blockRecSize = 12 // i32 orig + i32 fallthrough + u32 numOps
	opRecSize    = 42 // i32 id + i32 orig + u8 opcode + u8 cond + bool renamed + u8 guard class + i32 guard num + u8 ndests + u8 nsrcs + i64 imm + i32 target + f64 prob + i32 callee sym
	regRecSize   = 5  // u8 class + i32 num
	nodeRecSize  = 29 // i32 block + i32 op index + i32 home + u8 flags + i32 height + i32 exit count + f64 weight
	edgeRecSize  = 13 // u32 from + u32 to + i32 latency + u8 kind
	cycleRecSize = 4  // i32 issue cycle
	// Region block-list pair records.
	regionBlockRecSize = 8 // i32 block + i32 parent
)

// Minimum byte widths of the variable-width records, used only to bound
// reader.count against the remaining payload (a record can be larger than
// its minimum — strings — but never smaller, so count*min > remaining is
// proof of corruption without decoding).
const (
	profBlockRecSize = 12 // i32 block + f64 weight
	profEdgeRecSize  = 16 // i32 from + i32 to + f64 weight
	symRecMin        = 4  // u32 length prefix per callee symbol
	regionRecMin     = 7  // u8 kind + bool fromTrace + u32 nblocks + blocks
	schedRecMin      = 24 // u32 region + str model + i32 width + 3×i32 + node/edge counts
	diagRecMin       = 15 // 3×str (u32 len each) + u8 severity + i32 block + i32 op, minimum
)

// errSchemaSkew marks an entry written under a different payload schema: a
// clean miss, not corruption.
var errSchemaSkew = fmt.Errorf("store: schema skew")

// writer builds the payload with plain byte appends.
type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) i32(v int32)  { w.u32(uint32(v)) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }
func (w *writer) f64(v float64) {
	w.u64(math.Float64bits(v))
}
func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// reader consumes the payload with sticky-error bounds checking: any
// out-of-bounds read sets err and yields zeros, so decode logic can run
// straight-line and check once per section.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, a ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf("store: "+format, a...)
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail("truncated payload (need %d bytes at %d of %d)", n, r.off, len(r.b))
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *reader) u8() uint8 {
	s := r.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (r *reader) u32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (r *reader) u64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (r *reader) i32() int32   { return int32(r.u32()) }
func (r *reader) i64() int64   { return int64(r.u64()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) bool() bool { return r.u8() != 0 }

func (r *reader) str() string {
	n := int(r.u32())
	s := r.take(n)
	if s == nil {
		return ""
	}
	return string(s)
}

// count reads an element count and checks it against the bytes remaining
// (elemSize is a lower bound per element), so a corrupt length can never
// drive a giant allocation.
func (r *reader) count(elemSize int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n*elemSize > len(r.b)-r.off {
		r.fail("element count %d exceeds remaining %d bytes", n, len(r.b)-r.off)
		return 0
	}
	return n
}

// done checks the section was fully consumed.
func (r *reader) done(what string) {
	if r.err == nil && r.off != len(r.b) {
		r.fail("%s section has %d trailing bytes", what, len(r.b)-r.off)
	}
}

// encode flattens fr into the tgart2 payload.
func encode(fr *eval.FunctionResult) ([]byte, error) {
	if fr == nil || fr.Fn == nil {
		return nil, fmt.Errorf("store: nil result")
	}
	fnText := irtext.Print(fr.Fn)
	snap := fr.Fn.Snapshot()

	ids := []uint32{secIRText, secFunc, secProfile, secRegions, secSchedules, secStats}
	hasTrace := fr.Trace != nil
	if hasTrace {
		ids = append(ids, secTrace)
	}
	if len(fr.Diagnostics) > 0 {
		ids = append(ids, secDiagnostics)
	}

	w := &writer{buf: make([]byte, 0, len(fnText)+64*len(snap.Ops)+4096)}
	w.u32(schemaVersion)
	w.u32(uint32(len(ids)))
	tableOff := len(w.buf)
	w.buf = append(w.buf, make([]byte, len(ids)*secHdrSize)...)

	starts := make([]int, len(ids))
	for i, id := range ids {
		starts[i] = len(w.buf)
		var err error
		switch id {
		case secIRText:
			w.buf = append(w.buf, fnText...)
		case secFunc:
			encodeFunc(w, snap)
		case secProfile:
			encodeProfile(w, fr.Prof)
		case secRegions:
			encodeRegions(w, fr.Regions)
		case secSchedules:
			err = encodeSchedules(w, fr)
		case secStats:
			encodeStats(w, fr)
		case secTrace:
			encodeTrace(w, fr.Trace.Snapshot())
		case secDiagnostics:
			encodeDiagnostics(w, fr.Diagnostics)
		}
		if err != nil {
			return nil, err
		}
		hdr := w.buf[tableOff+i*secHdrSize:]
		binary.LittleEndian.PutUint32(hdr[0:], id)
		binary.LittleEndian.PutUint32(hdr[4:], 0)
		binary.LittleEndian.PutUint64(hdr[8:], uint64(starts[i]))
		binary.LittleEndian.PutUint64(hdr[16:], uint64(len(w.buf)-starts[i]))
	}
	return w.buf, nil
}

func encodeFunc(w *writer, s *ir.FuncSnapshot) {
	w.str(s.Name)
	w.i32(int32(s.Entry))
	w.i32(s.NextOp)
	w.i32(s.NextBlock)
	for _, n := range s.NextReg {
		w.i32(n)
	}
	w.u32(uint32(len(s.Params)))
	//rec:size regRecSize
	for _, r := range s.Params {
		w.u8(uint8(r.Class))
		w.i32(int32(r.Num))
	}
	w.u32(uint32(len(s.Rets)))
	//rec:size regRecSize
	for _, r := range s.Rets {
		w.u8(uint8(r.Class))
		w.i32(int32(r.Num))
	}
	w.u32(uint32(len(s.Syms)))
	for _, sym := range s.Syms {
		w.str(sym)
	}
	w.u32(uint32(len(s.Blocks)))
	w.u32(uint32(len(s.Ops)))
	w.u32(uint32(len(s.Regs)))
	//rec:size blockRecSize
	for i := range s.Blocks {
		b := &s.Blocks[i]
		w.i32(int32(b.Orig))
		w.i32(int32(b.FallThrough))
		w.u32(uint32(b.NumOps))
	}
	//rec:size opRecSize
	for i := range s.Ops {
		op := &s.Ops[i]
		w.i32(op.ID)
		w.i32(op.Orig)
		w.u8(uint8(op.Opcode))
		w.u8(uint8(op.Cond))
		w.bool(op.Renamed)
		w.u8(uint8(op.Guard.Class))
		w.i32(int32(op.Guard.Num))
		w.u8(op.NumDests)
		w.u8(op.NumSrcs)
		w.i64(op.Imm)
		w.i32(int32(op.Target))
		w.f64(op.Prob)
		w.i32(op.Callee)
	}
	//rec:size regRecSize
	for _, r := range s.Regs {
		w.u8(uint8(r.Class))
		w.i32(int32(r.Num))
	}
}

// snapPool recycles the transient FuncSnapshot that decodeFunc fills before
// Build copies it into the Function's own slabs. Nothing in the snapshot is
// retained by the built function, so reusing the three record slices removes
// the largest transient allocation on the warm store path.
var snapPool = sync.Pool{New: func() any { return new(ir.FuncSnapshot) }}

// growRecs returns buf resized to n, reallocating only when capacity is
// short; contents are unspecified (every decode loop writes all n records).
func growRecs[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

func decodeFunc(data []byte) (*ir.Function, error) {
	r := &reader{b: data}
	s := snapPool.Get().(*ir.FuncSnapshot)
	defer snapPool.Put(s)
	s.Name = r.str()
	s.Entry = ir.BlockID(r.i32())
	s.NextOp = r.i32()
	s.NextBlock = r.i32()
	for c := range s.NextReg {
		s.NextReg[c] = r.i32()
	}
	nparams := r.count(regRecSize)
	s.Params = growRecs(s.Params, nparams)
	for i := 0; i < nparams; i++ {
		class := ir.RegClass(r.u8())
		s.Params[i] = ir.Reg{Class: class, Num: int(r.i32())}
	}
	nrets := r.count(regRecSize)
	s.Rets = growRecs(s.Rets, nrets)
	for i := 0; i < nrets; i++ {
		class := ir.RegClass(r.u8())
		s.Rets[i] = ir.Reg{Class: class, Num: int(r.i32())}
	}
	nsyms := r.count(symRecMin)
	s.Syms = growRecs(s.Syms, nsyms)
	for i := 0; i < nsyms; i++ {
		s.Syms[i] = r.str()
	}
	nblocks := r.count(blockRecSize)
	nops := r.count(opRecSize)
	nregs := r.count(regRecSize)
	// Bulk-take each fixed-width record array: one bounds check per array
	// instead of one per field keeps the op loop branch-free.
	blockRaw := r.take(nblocks * blockRecSize)
	opRaw := r.take(nops * opRecSize)
	regRaw := r.take(nregs * regRecSize)
	r.done("func")
	if r.err != nil {
		return nil, r.err
	}
	le := binary.LittleEndian
	s.Blocks = growRecs(s.Blocks, nblocks)
	//rec:size blockRecSize
	for i := range s.Blocks {
		rec := blockRaw[i*blockRecSize : i*blockRecSize+blockRecSize]
		s.Blocks[i] = ir.BlockSnap{
			Orig:        ir.BlockID(int32(le.Uint32(rec[0:]))),
			FallThrough: ir.BlockID(int32(le.Uint32(rec[4:]))),
			NumOps:      int32(le.Uint32(rec[8:])),
		}
	}
	s.Ops = growRecs(s.Ops, nops)
	//rec:size opRecSize
	for i := range s.Ops {
		rec := opRaw[i*opRecSize : i*opRecSize+opRecSize]
		op := &s.Ops[i]
		op.ID = int32(le.Uint32(rec[0:]))
		op.Orig = int32(le.Uint32(rec[4:]))
		op.Opcode = ir.Opcode(rec[8])
		op.Cond = ir.Cond(rec[9])
		op.Renamed = rec[10] != 0
		op.Guard.Class = ir.RegClass(rec[11])
		op.Guard.Num = int(int32(le.Uint32(rec[12:])))
		op.NumDests = rec[16]
		op.NumSrcs = rec[17]
		op.Imm = int64(le.Uint64(rec[18:]))
		op.Target = ir.BlockID(int32(le.Uint32(rec[26:])))
		op.Prob = math.Float64frombits(le.Uint64(rec[30:]))
		op.Callee = int32(le.Uint32(rec[38:]))
	}
	s.Regs = growRecs(s.Regs, nregs)
	//rec:size regRecSize
	for i := range s.Regs {
		rec := regRaw[i*regRecSize : i*regRecSize+regRecSize]
		s.Regs[i] = ir.Reg{Class: ir.RegClass(rec[0]), Num: int(int32(le.Uint32(rec[1:])))}
	}
	if r.err != nil {
		return nil, r.err
	}
	fn, err := s.Build()
	if err != nil {
		return nil, fmt.Errorf("store: decode function: %w", err)
	}
	// The snapshot structure checks out; now enforce the full IR contract,
	// exactly as the gob-era decode did via irtext.Parse.
	if err := fn.Validate(); err != nil {
		return nil, fmt.Errorf("store: decode function: %w", err)
	}
	return fn, nil
}

func encodeProfile(w *writer, prof *profile.Data) {
	if prof == nil {
		w.bool(false)
		return
	}
	w.bool(true)
	// Map iteration is randomized; sort so re-encoding a decoded result
	// reproduces the original bytes.
	blocks := make([]ir.BlockID, 0, len(prof.Block))
	for b := range prof.Block {
		blocks = append(blocks, b)
	}
	slices.Sort(blocks)
	w.u32(uint32(len(blocks)))
	for _, b := range blocks {
		w.i32(int32(b))
		w.f64(prof.Block[b])
	}
	edges := make([]profile.Edge, 0, len(prof.Edge))
	for e := range prof.Edge {
		edges = append(edges, e)
	}
	slices.SortFunc(edges, func(a, b profile.Edge) int {
		if a.From != b.From {
			return int(a.From) - int(b.From)
		}
		return int(a.To) - int(b.To)
	})
	w.u32(uint32(len(edges)))
	for _, e := range edges {
		w.i32(int32(e.From))
		w.i32(int32(e.To))
		w.f64(prof.Edge[e])
	}
}

func decodeProfile(data []byte) (*profile.Data, error) {
	r := &reader{b: data}
	if !r.bool() {
		r.done("profile")
		return nil, r.err
	}
	nb := r.count(profBlockRecSize)
	prof := &profile.Data{
		Block: make(map[ir.BlockID]float64, nb),
		Edge:  nil, // sized below once the edge count is known
	}
	for i := 0; i < nb && r.err == nil; i++ {
		b := ir.BlockID(r.i32())
		prof.Block[b] = r.f64()
	}
	ne := r.count(profEdgeRecSize)
	prof.Edge = make(map[profile.Edge]float64, ne)
	for i := 0; i < ne && r.err == nil; i++ {
		from := ir.BlockID(r.i32())
		to := ir.BlockID(r.i32())
		prof.Edge[profile.Edge{From: from, To: to}] = r.f64()
	}
	r.done("profile")
	if r.err != nil {
		return nil, r.err
	}
	return prof, nil
}

func encodeRegions(w *writer, regions []*region.Region) {
	w.u32(uint32(len(regions)))
	for _, r := range regions {
		w.u8(uint8(r.Kind))
		w.bool(r.FromTrace)
		parents := r.Parents()
		w.u32(uint32(len(r.Blocks)))
		//rec:size regionBlockRecSize
		for i, b := range r.Blocks {
			w.i32(int32(b))
			w.i32(int32(parents[i]))
		}
	}
}

func decodeRegions(data []byte, fn *ir.Function) ([]*region.Region, error) {
	r := &reader{b: data}
	n := r.count(regionRecMin)
	out := make([]*region.Region, 0, n)
	// Rebuild copies both lists into the region's own tables, so one pair of
	// buffers serves every region in the entry.
	var blocks, parents []ir.BlockID
	for i := 0; i < n && r.err == nil; i++ {
		kind := region.Kind(r.u8())
		fromTrace := r.bool()
		nb := r.count(regionBlockRecSize)
		raw := r.take(nb * regionBlockRecSize)
		if r.err != nil {
			break
		}
		le := binary.LittleEndian
		blocks = growRecs(blocks, nb)
		parents = growRecs(parents, nb)
		//rec:size regionBlockRecSize
		for j := 0; j < nb; j++ {
			blocks[j] = ir.BlockID(int32(le.Uint32(raw[j*regionBlockRecSize:])))
			parents[j] = ir.BlockID(int32(le.Uint32(raw[j*regionBlockRecSize+4:])))
		}
		reg, err := region.Rebuild(fn, kind, blocks, parents, fromTrace)
		if err != nil {
			return nil, err
		}
		out = append(out, reg)
	}
	r.done("regions")
	if r.err != nil {
		return nil, r.err
	}
	return out, nil
}

func encodeSchedules(w *writer, fr *eval.FunctionResult) error {
	// Positional op index over the function: (block, index) survives the
	// round trip because blocks and per-block op order are preserved
	// verbatim by the func section.
	refOf := make(map[*ir.Op]uint64, fr.Fn.NumOps())
	for _, b := range fr.Fn.Blocks {
		for i, op := range b.Ops {
			refOf[op] = uint64(b.ID)<<32 | uint64(uint32(i))
		}
	}
	regionIdx := make(map[*region.Region]int, len(fr.Regions))
	for i, r := range fr.Regions {
		regionIdx[r] = i
	}
	w.u32(uint32(len(fr.Schedules)))
	for _, s := range fr.Schedules {
		if s.Graph == nil || s.Graph.Region == nil {
			return fmt.Errorf("store: schedule without graph")
		}
		ri, ok := regionIdx[s.Graph.Region]
		if !ok {
			return fmt.Errorf("store: schedule region not among result regions")
		}
		w.u32(uint32(ri))
		w.str(s.Model.Name)
		w.i32(int32(s.Model.IssueWidth))
		w.i32(int32(s.Graph.NumRenamed))
		w.i32(int32(s.Graph.NumCopies))
		w.i32(int32(s.Graph.NumMerged))
		nedges := 0
		for _, n := range s.Graph.Nodes {
			nedges += len(n.Succs)
		}
		w.u32(uint32(len(s.Graph.Nodes)))
		w.u32(uint32(nedges))
		//rec:size nodeRecSize
		for _, n := range s.Graph.Nodes {
			ref, ok := refOf[n.Op]
			if !ok {
				return fmt.Errorf("store: node op not found in function body")
			}
			w.i32(int32(ref >> 32))
			w.i32(int32(uint32(ref)))
			w.i32(int32(n.Home))
			var flags uint8
			if n.Term {
				flags |= 1
			}
			if n.Spec {
				flags |= 2
			}
			w.u8(flags)
			w.i32(int32(n.Height))
			w.i32(int32(n.ExitCount))
			w.f64(n.Weight)
		}
		for _, n := range s.Graph.Nodes {
			//rec:size edgeRecSize
			for _, e := range n.Succs {
				w.u32(uint32(n.Index))
				w.u32(uint32(e.To.Index))
				w.i32(int32(e.Latency))
				w.u8(uint8(e.Kind))
			}
		}
		w.i32(int32(s.Length))
		if len(s.Cycle) != len(s.Graph.Nodes) {
			return fmt.Errorf("store: %d cycles for %d nodes", len(s.Cycle), len(s.Graph.Nodes))
		}
		//rec:size cycleRecSize
		for _, c := range s.Cycle {
			w.i32(int32(c))
		}
	}
	return nil
}

func decodeSchedules(data []byte, fn *ir.Function, regions []*region.Region) ([]*sched.Schedule, error) {
	r := &reader{b: data}
	n := r.count(schedRecMin)
	out := make([]*sched.Schedule, 0, n)
	// The spec slices and graph scratch are reused across every schedule in
	// the entry: Restore copies what it keeps, so only the revived graphs
	// themselves allocate.
	var (
		nodes []ddg.NodeSpec
		edges []ddg.EdgeSpec
		sc    ddg.Scratch
	)
	for si := 0; si < n && r.err == nil; si++ {
		ri := int(r.u32())
		var model machine.Model
		model.Name = r.str()
		model.IssueWidth = int(r.i32())
		renamed := int(r.i32())
		copies := int(r.i32())
		merged := int(r.i32())
		nnodes := r.count(nodeRecSize)
		nedges := r.count(edgeRecSize)
		nodeRaw := r.take(nnodes * nodeRecSize)
		edgeRaw := r.take(nedges * edgeRecSize)
		length := int(r.i32())
		cycleRaw := r.take(nnodes * cycleRecSize)
		if r.err != nil {
			break
		}
		if ri < 0 || ri >= len(regions) {
			return nil, fmt.Errorf("store: schedule region %d out of range", ri)
		}
		if err := model.Validate(); err != nil {
			return nil, err
		}
		le := binary.LittleEndian
		if cap(nodes) < nnodes {
			nodes = make([]ddg.NodeSpec, nnodes)
		} else {
			nodes = nodes[:nnodes]
		}
		//rec:size nodeRecSize
		for i := range nodes {
			rec := nodeRaw[i*nodeRecSize : i*nodeRecSize+nodeRecSize]
			blockID := ir.BlockID(int32(le.Uint32(rec[0:])))
			opIdx := int(int32(le.Uint32(rec[4:])))
			if blockID < 0 || int(blockID) >= len(fn.Blocks) {
				return nil, fmt.Errorf("store: node op block bb%d out of range", blockID)
			}
			b := fn.Block(blockID)
			if opIdx < 0 || opIdx >= len(b.Ops) {
				return nil, fmt.Errorf("store: node op index %d out of range in bb%d", opIdx, blockID)
			}
			flags := rec[12]
			nodes[i] = ddg.NodeSpec{
				Op:        b.Ops[opIdx],
				Home:      ir.BlockID(int32(le.Uint32(rec[8:]))),
				Term:      flags&1 != 0,
				Spec:      flags&2 != 0,
				Height:    int(int32(le.Uint32(rec[13:]))),
				ExitCount: int(int32(le.Uint32(rec[17:]))),
				Weight:    math.Float64frombits(le.Uint64(rec[21:])),
			}
		}
		if cap(edges) < nedges {
			edges = make([]ddg.EdgeSpec, nedges)
		} else {
			edges = edges[:nedges]
		}
		//rec:size edgeRecSize
		for i := range edges {
			rec := edgeRaw[i*edgeRecSize : i*edgeRecSize+edgeRecSize]
			edges[i] = ddg.EdgeSpec{
				From:    int(le.Uint32(rec[0:])),
				To:      int(le.Uint32(rec[4:])),
				Latency: int(int32(le.Uint32(rec[8:]))),
				Kind:    ddg.EdgeKind(rec[12]),
			}
		}
		cycles := make([]int, nnodes)
		//rec:size cycleRecSize
		for i := range cycles {
			cycles[i] = int(int32(le.Uint32(cycleRaw[i*cycleRecSize:])))
		}
		g, err := ddg.RestoreScratch(fn, regions[ri], nodes, edges, renamed, copies, merged, &sc)
		if err != nil {
			return nil, err
		}
		for _, c := range cycles {
			if c < 0 || c >= length {
				return nil, fmt.Errorf("store: issue cycle %d outside schedule length %d", c, length)
			}
		}
		if length < 0 || (nnodes == 0 && length != 0) {
			return nil, fmt.Errorf("store: empty schedule with length %d", length)
		}
		out = append(out, &sched.Schedule{
			Graph:  g,
			Model:  model,
			Cycle:  cycles,
			Length: length,
		})
	}
	r.done("schedules")
	if r.err != nil {
		return nil, r.err
	}
	return out, nil
}

func encodeStats(w *writer, fr *eval.FunctionResult) {
	w.u32(resultStatsN)
	w.f64(fr.Time)
	w.f64(fr.Copies)
	w.i64(int64(fr.OpsBefore))
	w.i64(int64(fr.OpsAfter))
	w.i64(int64(fr.NumRenamed))
	w.i64(int64(fr.NumCopies))
	w.i64(int64(fr.NumMerged))
	w.i64(int64(fr.NumSpeculated))
	w.u32(schedStatsN)
	ss := fr.Sched
	w.i64(int64(ss.Ops))
	w.i64(int64(ss.Copies))
	w.i64(int64(ss.Branches))
	w.i64(int64(ss.Length))
	w.i64(int64(ss.Speculated))
	w.i64(int64(ss.BranchCycles))
	w.i64(int64(ss.PredicatedCycles))
	w.i64(int64(ss.MaxBranchesPerCycle))
	w.u32(hyperStatsN)
	w.i64(int64(fr.Hyper.Triangles))
	w.i64(int64(fr.Hyper.Diamonds))
	w.i64(int64(fr.Hyper.Predicated))
}

func decodeStats(data []byte, fr *eval.FunctionResult) error {
	r := &reader{b: data}
	if n := r.u32(); r.err == nil && n != resultStatsN {
		return errSchemaSkew
	}
	fr.Time = r.f64()
	fr.Copies = r.f64()
	fr.OpsBefore = int(r.i64())
	fr.OpsAfter = int(r.i64())
	fr.NumRenamed = int(r.i64())
	fr.NumCopies = int(r.i64())
	fr.NumMerged = int(r.i64())
	fr.NumSpeculated = int(r.i64())
	if n := r.u32(); r.err == nil && n != schedStatsN {
		return errSchemaSkew
	}
	fr.Sched.Ops = int(r.i64())
	fr.Sched.Copies = int(r.i64())
	fr.Sched.Branches = int(r.i64())
	fr.Sched.Length = int(r.i64())
	fr.Sched.Speculated = int(r.i64())
	fr.Sched.BranchCycles = int(r.i64())
	fr.Sched.PredicatedCycles = int(r.i64())
	fr.Sched.MaxBranchesPerCycle = int(r.i64())
	if n := r.u32(); r.err == nil && n != hyperStatsN {
		return errSchemaSkew
	}
	fr.Hyper.Triangles = int(r.i64())
	fr.Hyper.Diamonds = int(r.i64())
	fr.Hyper.Predicated = int(r.i64())
	r.done("stats")
	return r.err
}

func encodeTrace(w *writer, snap telemetry.TraceSnapshot) {
	w.str(snap.Function)
	w.u32(uint32(telemetry.NumPhases))
	for p := telemetry.Phase(0); p < telemetry.NumPhases; p++ {
		ps := snap.Phase[p]
		w.i64(ps.Nanos)
		w.i64(ps.Calls)
		w.i64(ps.Ops)
		w.i64(ps.Allocs)
	}
}

func decodeTrace(data []byte) (*telemetry.CompileTrace, error) {
	r := &reader{b: data}
	var snap telemetry.TraceSnapshot
	snap.Function = r.str()
	if n := r.u32(); r.err == nil && n != uint32(telemetry.NumPhases) {
		// Written by a binary with a different phase set.
		return nil, errSchemaSkew
	}
	for p := telemetry.Phase(0); p < telemetry.NumPhases; p++ {
		snap.Phase[p] = telemetry.PhaseSnapshot{
			Nanos:  r.i64(),
			Calls:  r.i64(),
			Ops:    r.i64(),
			Allocs: r.i64(),
		}
	}
	r.done("trace")
	if r.err != nil {
		return nil, r.err
	}
	return snap.Restore(), nil
}

func encodeDiagnostics(w *writer, ds []verify.Diagnostic) {
	w.u32(uint32(len(ds)))
	for _, d := range ds {
		w.str(d.Rule)
		w.u8(uint8(d.Severity))
		w.str(d.Fn)
		w.i32(int32(d.Block))
		w.i32(int32(d.Op))
		w.str(d.Message)
	}
}

func decodeDiagnostics(data []byte) ([]verify.Diagnostic, error) {
	r := &reader{b: data}
	n := r.count(diagRecMin)
	out := make([]verify.Diagnostic, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		d := verify.Diagnostic{
			Rule:     r.str(),
			Severity: verify.Severity(r.u8()),
			Fn:       r.str(),
			Block:    ir.BlockID(r.i32()),
			Op:       int(r.i32()),
			Message:  r.str(),
		}
		if d.Severity > verify.Error {
			return nil, fmt.Errorf("store: unknown diagnostic severity %d", d.Severity)
		}
		out = append(out, d)
	}
	r.done("diagnostics")
	if r.err != nil {
		return nil, r.err
	}
	return out, nil
}

// section is one parsed section-table row.
type section struct {
	id   uint32
	data []byte
}

// parseSections validates the header and section table: schema match, ids
// strictly increasing and known, sections contiguous from the end of the
// table, and every (offset, length) in bounds. Overlapping or out-of-order
// ranges are corruption by construction.
func parseSections(data []byte) ([]section, error) {
	r := &reader{b: data}
	schema := r.u32()
	if r.err != nil {
		return nil, r.err
	}
	if schema != schemaVersion {
		// A plausible schema number is another binary generation's entry
		// (skew, a clean miss); anything else is garbage wearing our magic.
		if schema >= 1 && schema < 4096 {
			return nil, errSchemaSkew
		}
		return nil, fmt.Errorf("store: implausible schema %d", schema)
	}
	nsec := int(r.u32())
	if r.err == nil && (nsec < 1 || nsec > maxSections) {
		return nil, fmt.Errorf("store: bad section count %d", nsec)
	}
	if r.err != nil {
		return nil, r.err
	}
	table := r.take(nsec * secHdrSize)
	if r.err != nil {
		return nil, r.err
	}
	out := make([]section, nsec)
	next := uint64(r.off)
	lastID := uint32(0)
	for i := 0; i < nsec; i++ {
		hdr := table[i*secHdrSize:]
		id := binary.LittleEndian.Uint32(hdr[0:])
		off := binary.LittleEndian.Uint64(hdr[8:])
		length := binary.LittleEndian.Uint64(hdr[16:])
		if id <= lastID || id > secDiagnostics {
			return nil, fmt.Errorf("store: bad section id %d after %d", id, lastID)
		}
		lastID = id
		if off != next {
			return nil, fmt.Errorf("store: section %d at offset %d, want %d", id, off, next)
		}
		if length > uint64(len(data))-off {
			return nil, fmt.Errorf("store: section %d overruns payload", id)
		}
		out[i] = section{id: id, data: data[off : off+length]}
		next = off + length
	}
	if next != uint64(len(data)) {
		return nil, fmt.Errorf("store: %d trailing bytes after last section", uint64(len(data))-next)
	}
	return out, nil
}

// decode revives a FunctionResult from the tgart2 payload.
func decode(data []byte) (*eval.FunctionResult, error) {
	secs, err := parseSections(data)
	if err != nil {
		return nil, err
	}
	bySec := [secDiagnostics + 1][]byte{}
	seen := [secDiagnostics + 1]bool{}
	for _, s := range secs {
		bySec[s.id] = s.data
		seen[s.id] = true
	}
	for id := secIRText; id <= secStats; id++ {
		if !seen[id] {
			return nil, fmt.Errorf("store: missing section %d", id)
		}
	}

	fn, err := decodeFunc(bySec[secFunc])
	if err != nil {
		return nil, err
	}
	fr := &eval.FunctionResult{Fn: fn}
	if fr.Prof, err = decodeProfile(bySec[secProfile]); err != nil {
		return nil, err
	}
	if fr.Regions, err = decodeRegions(bySec[secRegions], fn); err != nil {
		return nil, err
	}
	if fr.Schedules, err = decodeSchedules(bySec[secSchedules], fn, fr.Regions); err != nil {
		return nil, err
	}
	if err = decodeStats(bySec[secStats], fr); err != nil {
		return nil, err
	}
	if seen[secTrace] {
		if fr.Trace, err = decodeTrace(bySec[secTrace]); err != nil {
			return nil, err
		}
	}
	if seen[secDiagnostics] {
		if fr.Diagnostics, err = decodeDiagnostics(bySec[secDiagnostics]); err != nil {
			return nil, err
		}
	}
	return fr, nil
}
