package store

import (
	"bytes"
	"testing"

	"treegion/internal/eval"
	"treegion/internal/ir"
	"treegion/internal/irtext"
	"treegion/internal/progen"
)

// TestCodecRoundTripCalls covers the interprocedural additions to the
// snapshot format: the callee symbol table behind residual Call ops, and the
// Params/Rets convention registers on callee functions. The callhot preset
// provides both — its callers keep residual calls when inlining is off, and
// its callees carry non-empty conventions.
func TestCodecRoundTripCalls(t *testing.T) {
	p, ok := progen.PresetByName("callhot")
	if !ok {
		t.Fatal("callhot preset missing")
	}
	prog, err := progen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	profs, err := eval.ProfileProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	cfg := eval.DefaultConfig()
	cfg.Kind = eval.BasicBlocks // calls stay as barriers in every block
	sawCall, sawConvention := false, false
	for i, fn := range prog.Funcs {
		fr, err := eval.CompileFunction(fn.Clone(), profs[i].Clone(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		b1, err := encode(fr)
		if err != nil {
			t.Fatal(err)
		}
		fr2, err := decode(b1)
		if err != nil {
			t.Fatalf("%s: decode failed: %v", fn.Name, err)
		}
		b2, err := encode(fr2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("%s: re-encoding is not byte-stable", fn.Name)
		}
		if irtext.Print(fr2.Fn) != irtext.Print(fr.Fn) {
			t.Fatalf("%s: restored IR differs", fn.Name)
		}
		for _, blk := range fr2.Fn.Blocks {
			for _, op := range blk.Ops {
				if op.Opcode == ir.Call && op.Callee != "" {
					sawCall = true
				}
			}
		}
		if len(fr2.Fn.Params) > 0 {
			sawConvention = true
			if len(fr2.Fn.Params) != len(fn.Params) || len(fr2.Fn.Rets) != len(fn.Rets) {
				t.Fatalf("%s: convention lost: %v -> %v, %v -> %v",
					fn.Name, fn.Params, fr2.Fn.Params, fn.Rets, fr2.Fn.Rets)
			}
		}
	}
	if !sawCall || !sawConvention {
		t.Fatalf("preset exercised call=%t convention=%t; need both", sawCall, sawConvention)
	}
}
