// Package store is the disk-backed, content-addressed artifact store: the
// second (persistent) level under internal/compcache's in-memory result
// cache. Each entry is one compiled FunctionResult keyed by the same
// SHA-256 content address the memory cache uses, so compilation artifacts
// survive process restarts — a warm suite compile in a fresh process pays
// zero scheduler invocations.
//
// Durability model:
//
//   - Writes are atomic: entries are written to a temp file in the store
//     and renamed into place, so readers never observe a half-written
//     entry under its final name.
//   - Reads are corruption-tolerant: a truncated, garbled or
//     wrong-schema entry decodes to a cache miss, never a crash. Corrupt
//     entries are quarantined (removed) and counted.
//   - The store is garbage-collected to a byte budget by recency: every
//     hit refreshes the entry's mtime, and GC removes least-recently-used
//     entries until the store fits (the most recent entry always stays).
//
// The store also hosts two named-blob namespaces: Journal, used by
// internal/jobs to persist queued/running jobs across restarts, and
// Verdicts, which caches verification verdicts keyed by artifact hash so a
// warm verified compile re-checks nothing.
package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"treegion/internal/compcache"
	"treegion/internal/eval"
	"treegion/internal/telemetry"
	"treegion/internal/verify"
)

// DefaultBudget is the default disk budget: roomy enough for the full
// experiment suite under every paper configuration, several times over.
const DefaultBudget = 4 << 30

// entryExt marks artifact files; everything else in the objects tree is
// ignored (and a foreign file can never be quarantined as a corrupt entry).
const entryExt = ".art"

// Store is a disk-backed artifact store rooted at one directory. It is safe
// for concurrent use by multiple goroutines; concurrent processes sharing a
// directory are safe too (atomic renames, content-addressed idempotent
// writes), though their byte accounting is process-local.
type Store struct {
	dir      string
	objects  string
	tmp      string
	journal  string
	verdicts string
	budget   int64

	bytes   atomic.Int64
	entries atomic.Int64

	hits, misses, puts    atomic.Int64
	evictions, corrupt    atomic.Int64
	skew                  atomic.Int64
	writeErrs, encodeErrs atomic.Int64

	verdictHits, verdictMisses, verdictPuts atomic.Int64

	gcMu sync.Mutex
}

// Open creates (or reopens) a store rooted at dir. budgetBytes <= 0 selects
// DefaultBudget. Leftover temp files from a crashed writer are removed; the
// resident byte and entry counts are rebuilt by scanning the objects tree.
func Open(dir string, budgetBytes int64) (*Store, error) {
	if budgetBytes <= 0 {
		budgetBytes = DefaultBudget
	}
	s := &Store{
		dir:      dir,
		objects:  filepath.Join(dir, "objects"),
		tmp:      filepath.Join(dir, "tmp"),
		journal:  filepath.Join(dir, "journal"),
		verdicts: filepath.Join(dir, "verdicts"),
		budget:   budgetBytes,
	}
	for _, d := range []string{s.objects, s.tmp, s.journal, s.verdicts} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	// A crashed writer can leave temp files behind; they were never visible
	// under a final name, so removing them is always safe.
	if leftovers, err := os.ReadDir(s.tmp); err == nil {
		for _, e := range leftovers {
			os.Remove(filepath.Join(s.tmp, e.Name()))
		}
	}
	for _, e := range s.scan() {
		s.bytes.Add(e.size)
		s.entries.Add(1)
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// pathOf maps a key to its entry path, fanned out over 256 subdirectories
// so no single directory grows unboundedly.
func (s *Store) pathOf(k compcache.Key) string {
	hex := fmt.Sprintf("%x", k[:])
	return filepath.Join(s.objects, hex[:2], hex[2:]+entryExt)
}

// Get reads and decodes the entry for k. A missing entry is a plain miss; a
// corrupt one (torn write, garbled bytes, invalid indices) is quarantined,
// counted, and reported as a miss — the caller recompiles. A hit refreshes
// the entry's recency for GC.
func (s *Store) Get(k compcache.Key) (*eval.FunctionResult, bool) {
	if s == nil {
		return nil, false
	}
	path := s.pathOf(k)
	bp, data, mtime, err := readEntry(path)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	fr, err := s.decodeEntry(data)
	size := len(data)
	entryBufPool.Put(bp)
	if err != nil {
		if err == errSchemaSkew {
			s.skew.Add(1)
		} else {
			// Corrupt: quarantine so the next lookup doesn't re-pay the
			// failed decode. Schema skew is left in place — it may be a
			// perfectly good entry written by a different binary version.
			s.corrupt.Add(1)
			if rmErr := os.Remove(path); rmErr == nil {
				s.bytes.Add(-int64(size))
				s.entries.Add(-1)
			}
		}
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	if now := time.Now(); now.Sub(mtime) > recencyGrain {
		os.Chtimes(path, now, now)
	}
	return fr, true
}

// entryBufPool recycles the raw entry read buffer: decode copies everything
// it keeps (record fields into slabs, strings via string conversion), so the
// file bytes are dead the moment decodeEntry returns.
var entryBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 64<<10)
	return &b
}}

// readEntry reads path into a pooled buffer. On success the caller owns bp
// until it returns it to entryBufPool; data aliases bp's backing array.
func readEntry(path string) (bp *[]byte, data []byte, mtime time.Time, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, time.Time{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, time.Time{}, err
	}
	n := int(st.Size())
	bp = entryBufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, 0, n)
	}
	data = (*bp)[:n]
	if _, err := io.ReadFull(f, data); err != nil {
		entryBufPool.Put(bp)
		return nil, nil, time.Time{}, err
	}
	//vet:ignore arenaescape ownership handoff: the caller (Store.Get) returns bp to entryBufPool on every path, including decode errors
	return bp, data, st.ModTime(), nil
}

// recencyGrain bounds how stale an entry's mtime may go before a hit
// refreshes it. GC evicts by whole-entry recency ordering, so refreshing a
// file touched seconds ago buys nothing — skipping the utimes syscall on
// every hot hit does.
const recencyGrain = time.Hour

// decodeEntry validates the header and decodes the payload, converting any
// panic out of a hostile byte stream into an error.
func (s *Store) decodeEntry(data []byte) (fr *eval.FunctionResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			fr, err = nil, fmt.Errorf("store: decode panicked: %v", r)
		}
	}()
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		// An entry from the previous (gob) generation is schema skew, not
		// corruption: it is a perfectly good artifact for an old binary, so
		// it is left in place and read as a plain miss. There is no
		// migration path — skew equals miss by policy.
		if len(data) >= len(oldMagic) && string(data[:len(oldMagic)]) == oldMagic {
			return nil, errSchemaSkew
		}
		return nil, fmt.Errorf("store: bad entry header")
	}
	return decode(data[len(magic):])
}

// magic heads every entry file; the digit is the header version.
const magic = "tgart2\n"

// oldMagic is the previous generation's header; entries carrying it decode
// as schema skew (a miss), never corruption.
const oldMagic = "tgart1\n"

// Put encodes and writes the entry for k atomically (temp file + rename).
// Re-putting an existing key only refreshes its recency: the store is
// content-addressed, so the bytes would be identical. Put never fails the
// compile it serves — errors are returned for tests and counted, and the
// cache layer above ignores them.
func (s *Store) Put(k compcache.Key, fr *eval.FunctionResult) error {
	if s == nil || fr == nil {
		return nil
	}
	path := s.pathOf(k)
	if _, err := os.Stat(path); err == nil {
		now := time.Now()
		os.Chtimes(path, now, now)
		return nil
	}
	body, err := encode(fr)
	if err != nil {
		s.encodeErrs.Add(1)
		return err
	}
	if err := s.writeAtomic(path, append([]byte(magic), body...)); err != nil {
		s.writeErrs.Add(1)
		return err
	}
	s.puts.Add(1)
	s.bytes.Add(int64(len(magic) + len(body)))
	s.entries.Add(1)
	if s.bytes.Load() > s.budget {
		s.GC()
	}
	return nil
}

// writeAtomic writes data to path via a temp file in the store's tmp
// directory (same filesystem, so the rename is atomic).
func (s *Store) writeAtomic(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	f, err := os.CreateTemp(s.tmp, "put-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// fileInfo is one scanned entry.
type fileInfo struct {
	path  string
	size  int64
	mtime time.Time
}

// scan walks the objects tree.
func (s *Store) scan() []fileInfo {
	var out []fileInfo
	filepath.WalkDir(s.objects, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, entryExt) {
			return nil
		}
		if info, err := d.Info(); err == nil {
			out = append(out, fileInfo{path: path, size: info.Size(), mtime: info.ModTime()})
		}
		return nil
	})
	return out
}

// GC removes least-recently-used entries until the store fits its byte
// budget. The most recently used entry always survives (an oversized
// singleton stays resident rather than thrashing). GC is deterministic in
// the entry mtimes: oldest-first, ties broken by path.
func (s *Store) GC() {
	if s == nil {
		return
	}
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	files := s.scan()
	var total int64
	for _, f := range files {
		total += f.size
	}
	// Resync the approximate counters with the ground truth while we hold
	// the full scan (another process may share the directory).
	s.bytes.Store(total)
	s.entries.Store(int64(len(files)))
	if total <= s.budget {
		return
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mtime.Equal(files[j].mtime) {
			return files[i].mtime.Before(files[j].mtime)
		}
		return files[i].path < files[j].path
	})
	for i := 0; total > s.budget && i < len(files)-1; i++ {
		if err := os.Remove(files[i].path); err != nil {
			continue
		}
		total -= files[i].size
		s.bytes.Add(-files[i].size)
		s.entries.Add(-1)
		s.evictions.Add(1)
	}
}

// Close flushes the store: a final GC enforces the budget so the directory
// a drained daemon leaves behind is within bounds.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.GC()
	return nil
}

// Stats is a point-in-time snapshot of the store counters.
type Stats struct {
	Hits, Misses, Puts        int64
	Evictions, Corrupt        int64
	SchemaSkew                int64
	WriteErrors, EncodeErrors int64
	Entries, Bytes, Budget    int64

	VerdictHits, VerdictMisses, VerdictPuts int64
}

// SchemaVersion is the payload schema this binary reads and writes; entries
// carrying any other schema (or the old tgart1 header) count as SchemaSkew
// misses.
func (s *Store) SchemaVersion() int { return schemaVersion }

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Puts:           s.puts.Load(),
		Evictions:      s.evictions.Load(),
		Corrupt:        s.corrupt.Load(),
		SchemaSkew:     s.skew.Load(),
		WriteErrors:    s.writeErrs.Load(),
		EncodeErrors:   s.encodeErrs.Load(),
		Entries:        s.entries.Load(),
		Bytes:          s.bytes.Load(),
		Budget:         s.budget,
		VerdictHits:    s.verdictHits.Load(),
		VerdictMisses:  s.verdictMisses.Load(),
		VerdictPuts:    s.verdictPuts.Load(),
	}
}

// Register exposes the store counters on reg under prefix, alongside the
// cache and pipeline metrics the rest of the service reports.
func (s *Store) Register(reg *telemetry.Registry, prefix string) {
	reg.CounterFunc(prefix+"_store_hits_total", "Compiles served from the disk artifact store.", s.hits.Load)
	reg.CounterFunc(prefix+"_store_misses_total", "Disk store lookups that missed.", s.misses.Load)
	reg.CounterFunc(prefix+"_store_puts_total", "Artifacts written to the disk store.", s.puts.Load)
	reg.CounterFunc(prefix+"_store_evictions_total", "Artifacts removed by byte-budget GC.", s.evictions.Load)
	reg.CounterFunc(prefix+"_store_corrupt_total", "Corrupt artifacts quarantined on read.", s.corrupt.Load)
	reg.CounterFunc(prefix+"_store_schema_skew_total", "Artifacts skipped for carrying another schema version.", s.skew.Load)
	reg.CounterFunc(prefix+"_store_write_errors_total", "Artifact writes that failed.", s.writeErrs.Load)
	reg.CounterFunc(prefix+"_store_verdict_hits_total", "Verification verdicts served from the store.", s.verdictHits.Load)
	reg.CounterFunc(prefix+"_store_verdict_misses_total", "Verdict lookups that missed.", s.verdictMisses.Load)
	reg.CounterFunc(prefix+"_store_verdict_puts_total", "Verdicts written to the store.", s.verdictPuts.Load)
	reg.GaugeFunc(prefix+"_store_entries", "Resident disk store entries.", s.entries.Load)
	reg.GaugeFunc(prefix+"_store_bytes", "Resident disk store bytes.", s.bytes.Load)
	reg.GaugeFunc(prefix+"_store_budget_bytes", "Configured disk store byte budget.", func() int64 { return s.budget })
}

// Journal returns the store's named-blob namespace, used by the job queue
// to persist job records across restarts. Blob writes are atomic like
// entry writes, and blob bytes are not charged against the artifact budget
// (journal records are tiny and must never be GC'd away under load).
func (s *Store) Journal() *Journal {
	if s == nil {
		return nil
	}
	return &Journal{store: s, dir: s.journal}
}

// Journal is a flat namespace of small named blobs under the store. The
// store hosts one per namespace directory (job journal, verdicts).
type Journal struct {
	store *Store
	dir   string
}

// blobPath validates the id (a single path element) and maps it to a file.
func (j *Journal) blobPath(id string) (string, error) {
	if id == "" || strings.ContainsAny(id, "/\\") || id == "." || id == ".." {
		return "", fmt.Errorf("store: bad journal id %q", id)
	}
	return filepath.Join(j.dir, id+".json"), nil
}

// Put writes the blob atomically.
func (j *Journal) Put(id string, data []byte) error {
	if j == nil {
		return nil
	}
	path, err := j.blobPath(id)
	if err != nil {
		return err
	}
	return j.store.writeAtomic(path, data)
}

// Get reads one blob.
func (j *Journal) Get(id string) ([]byte, bool) {
	if j == nil {
		return nil, false
	}
	path, err := j.blobPath(id)
	if err != nil {
		return nil, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	return data, true
}

// Delete removes one blob; deleting an absent blob is not an error.
func (j *Journal) Delete(id string) error {
	if j == nil {
		return nil
	}
	path, err := j.blobPath(id)
	if err != nil {
		return err
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// List returns every blob keyed by id.
func (j *Journal) List() (map[string][]byte, error) {
	if j == nil {
		return nil, nil
	}
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(j.dir, name))
		if err != nil {
			continue
		}
		out[strings.TrimSuffix(name, ".json")] = data
	}
	return out, nil
}

// Verdicts returns the verdict namespace: small blobs recording the
// verifier's judgment of an artifact, keyed by the artifact's content
// address. Like journal blobs, verdicts are written atomically and are not
// charged against the artifact byte budget (they are tiny and losing them
// only costs a re-verify).
func (s *Store) Verdicts() *Journal {
	if s == nil {
		return nil
	}
	return &Journal{store: s, dir: s.verdicts}
}

// GetVerdict reads the cached verification verdict for the artifact keyed
// by k. A missing, malformed, or schema-skewed verdict is a miss — the
// caller re-runs the verifier and re-puts.
func (s *Store) GetVerdict(k compcache.Key) (*verify.Verdict, bool) {
	if s == nil {
		return nil, false
	}
	data, ok := s.Verdicts().Get(fmt.Sprintf("%x", k[:]))
	if !ok {
		s.verdictMisses.Add(1)
		return nil, false
	}
	v, err := verify.DecodeVerdict(data)
	if err != nil {
		s.verdictMisses.Add(1)
		return nil, false
	}
	s.verdictHits.Add(1)
	return v, true
}

// PutVerdict persists the verdict for the artifact keyed by k.
func (s *Store) PutVerdict(k compcache.Key, v *verify.Verdict) error {
	if s == nil || v == nil {
		return nil
	}
	data, err := v.Encode()
	if err != nil {
		return err
	}
	if err := s.Verdicts().Put(fmt.Sprintf("%x", k[:]), data); err != nil {
		return err
	}
	s.verdictPuts.Add(1)
	return nil
}
