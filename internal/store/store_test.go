package store

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"treegion/internal/compcache"
	"treegion/internal/eval"
	"treegion/internal/ir"
	"treegion/internal/irtext"
	"treegion/internal/progen"
)

// encodeWithSchema re-encodes fr's payload under a different schema
// version, modelling an entry written by a newer binary. The schema is the
// payload's leading u32.
func encodeWithSchema(fr *eval.FunctionResult, schema int) ([]byte, error) {
	body, err := encode(fr)
	if err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint32(body, uint32(schema))
	return body, nil
}

// compiled builds one real compiled function plus its cache key.
func compiled(t testing.TB) (compcache.Key, *eval.FunctionResult) {
	t.Helper()
	p, ok := progen.PresetByName("compress")
	if !ok {
		t.Fatal("no compress preset")
	}
	prog, err := progen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	profs, err := eval.ProfileProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	cfg := eval.DefaultConfig()
	k := compcache.KeyOf(irtext.Print(prog.Funcs[0]), profs[0].Canonical(), cfg.Fingerprint())
	fr, err := eval.CompileFunction(prog.Funcs[0].Clone(), profs[0].Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k, fr
}

// requireEquivalent asserts that a restored result carries the same
// numbers, regions and schedules as the original — everything the
// experiment drivers and the daemon read.
func requireEquivalent(t *testing.T, want, got *eval.FunctionResult) {
	t.Helper()
	if got.Fn.Name != want.Fn.Name {
		t.Fatalf("function name %q != %q", got.Fn.Name, want.Fn.Name)
	}
	if irtext.Print(got.Fn) != irtext.Print(want.Fn) {
		t.Fatal("restored function IR differs")
	}
	if got.Time != want.Time || got.Copies != want.Copies {
		t.Fatalf("times (%v, %v) != (%v, %v)", got.Time, got.Copies, want.Time, want.Copies)
	}
	if got.OpsBefore != want.OpsBefore || got.OpsAfter != want.OpsAfter {
		t.Fatalf("op counts (%d, %d) != (%d, %d)", got.OpsBefore, got.OpsAfter, want.OpsBefore, want.OpsAfter)
	}
	if got.NumRenamed != want.NumRenamed || got.NumCopies != want.NumCopies ||
		got.NumMerged != want.NumMerged || got.NumSpeculated != want.NumSpeculated {
		t.Fatal("scheduling counters differ")
	}
	if got.Sched != want.Sched {
		t.Fatalf("sched stats %+v != %+v", got.Sched, want.Sched)
	}
	if len(got.Regions) != len(want.Regions) {
		t.Fatalf("%d regions != %d", len(got.Regions), len(want.Regions))
	}
	for i := range want.Regions {
		if got.Regions[i].Kind != want.Regions[i].Kind {
			t.Fatalf("region %d kind differs", i)
		}
		if len(got.Regions[i].Blocks) != len(want.Regions[i].Blocks) {
			t.Fatalf("region %d has %d blocks, want %d", i, len(got.Regions[i].Blocks), len(want.Regions[i].Blocks))
		}
		for j, b := range want.Regions[i].Blocks {
			if got.Regions[i].Blocks[j] != b {
				t.Fatalf("region %d block %d differs", i, j)
			}
		}
	}
	if len(got.Schedules) != len(want.Schedules) {
		t.Fatalf("%d schedules != %d", len(got.Schedules), len(want.Schedules))
	}
	for i := range want.Schedules {
		ws, gs := want.Schedules[i], got.Schedules[i]
		if gs.Length != ws.Length {
			t.Fatalf("schedule %d length %d != %d", i, gs.Length, ws.Length)
		}
		if len(gs.Cycle) != len(ws.Cycle) {
			t.Fatalf("schedule %d has %d cycles, want %d", i, len(gs.Cycle), len(ws.Cycle))
		}
		for j := range ws.Cycle {
			if gs.Cycle[j] != ws.Cycle[j] {
				t.Fatalf("schedule %d node %d cycle differs", i, j)
			}
		}
		// The schedule's textual rendering walks the whole restored DDG
		// (nodes, homes, op mnemonics), so equal strings mean the graph
		// round-tripped faithfully.
		if gs.String() != ws.String() {
			t.Fatalf("schedule %d renders differently:\n--- got\n%s\n--- want\n%s", i, gs, ws)
		}
	}
	if want.Prof != nil {
		if got.Prof == nil {
			t.Fatal("profile dropped")
		}
		blocks := make([]int, 0, len(want.Prof.Block))
		for b := range want.Prof.Block {
			blocks = append(blocks, int(b))
		}
		sort.Ints(blocks)
		for _, bi := range blocks {
			b := ir.BlockID(bi)
			if got.Prof.Block[b] != want.Prof.Block[b] {
				t.Fatalf("block bb%d weight %v != %v", b, got.Prof.Block[b], want.Prof.Block[b])
			}
		}
	}
}

func TestRoundTripSameHandle(t *testing.T) {
	k, fr := compiled(t)
	st, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(k); ok {
		t.Fatal("hit on empty store")
	}
	if err := st.Put(k, fr); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Get(k)
	if !ok {
		t.Fatal("miss after Put")
	}
	requireEquivalent(t, fr, got)
	s := st.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Puts != 1 || s.Entries != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.Bytes <= 0 {
		t.Fatalf("bytes %d", s.Bytes)
	}
}

func TestRestartPersistence(t *testing.T) {
	dir := t.TempDir()
	k, fr := compiled(t)

	st1, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st1.Put(k, fr); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// A second handle on the same directory models a process restart.
	st2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s := st2.Stats(); s.Entries != 1 || s.Bytes <= 0 {
		t.Fatalf("restart scan found %+v", s)
	}
	got, ok := st2.Get(k)
	if !ok {
		t.Fatal("entry did not survive restart")
	}
	requireEquivalent(t, fr, got)
}

func TestTornWriteReadsAsMissAndQuarantines(t *testing.T) {
	dir := t.TempDir()
	k, fr := compiled(t)
	st, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(k, fr); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn write: truncate the entry mid-payload.
	path := st.pathOf(k)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	if _, ok := st.Get(k); ok {
		t.Fatal("torn entry served as a hit")
	}
	s := st.Stats()
	if s.Corrupt != 1 {
		t.Fatalf("corrupt counter %d, want 1", s.Corrupt)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("torn entry not quarantined")
	}
	// The quarantined key compiles fresh and is storable again.
	if err := st.Put(k, fr); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(k); !ok {
		t.Fatal("re-put after quarantine missed")
	}
}

func TestGarbageJSONReadsAsMiss(t *testing.T) {
	dir := t.TempDir()
	k, _ := compiled(t)
	st, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := st.pathOf(k)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("tgart2\nnot a tgart2 payload at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(k); ok {
		t.Fatal("garbage served as a hit")
	}
	if s := st.Stats(); s.Corrupt != 1 {
		t.Fatalf("corrupt counter %d, want 1", s.Corrupt)
	}
}

func TestOldGenerationEntryIsSkewNotCorruption(t *testing.T) {
	dir := t.TempDir()
	k, _ := compiled(t)
	st, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := st.pathOf(k)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	// A tgart1 (gob-era) entry: perfectly valid for an old binary, so it
	// reads as schema skew — a plain miss, left in place, never quarantined.
	if err := os.WriteFile(path, []byte("tgart1\nsome old gob bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(k); ok {
		t.Fatal("old-generation entry served as a hit")
	}
	s := st.Stats()
	if s.Corrupt != 0 {
		t.Fatal("old-generation entry miscounted as corruption")
	}
	if s.SchemaSkew != 1 {
		t.Fatalf("schema skew counter %d, want 1", s.SchemaSkew)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal("old-generation entry was quarantined")
	}
}

func TestGCEnforcesByteBudgetOldestFirst(t *testing.T) {
	dir := t.TempDir()
	k, fr := compiled(t)
	st, err := Open(dir, 1<<40) // effectively unbounded while seeding
	if err != nil {
		t.Fatal(err)
	}
	// Distinct keys for the same payload: content addressing only cares
	// about the key, so this cheaply makes N same-sized entries.
	keys := []compcache.Key{
		k,
		compcache.KeyOf("a", "b", "c"),
		compcache.KeyOf("d", "e", "f"),
		compcache.KeyOf("g", "h", "i"),
	}
	for _, key := range keys {
		if err := st.Put(key, fr); err != nil {
			t.Fatal(err)
		}
	}
	per := st.Stats().Bytes / int64(len(keys))
	// Deterministic recency: keys[0] oldest ... keys[3] newest.
	base := time.Now().Add(-time.Hour)
	for i, key := range keys {
		ts := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(st.pathOf(key), ts, ts); err != nil {
			t.Fatal(err)
		}
	}

	st.budget = 2 * per // room for two entries
	st.GC()

	s := st.Stats()
	if s.Entries != 2 {
		t.Fatalf("%d entries after GC, want 2", s.Entries)
	}
	if s.Evictions != 2 {
		t.Fatalf("%d evictions, want 2", s.Evictions)
	}
	if s.Bytes > st.budget {
		t.Fatalf("bytes %d over budget %d", s.Bytes, st.budget)
	}
	for i, key := range keys {
		_, err := os.Stat(st.pathOf(key))
		if i < 2 && !os.IsNotExist(err) {
			t.Fatalf("old entry %d survived GC", i)
		}
		if i >= 2 && err != nil {
			t.Fatalf("recent entry %d evicted: %v", i, err)
		}
	}
}

func TestGCKeepsNewestEvenOverBudget(t *testing.T) {
	k, fr := compiled(t)
	st, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(k, fr); err != nil {
		t.Fatal(err)
	}
	st.budget = 1 // far under one entry
	st.GC()
	if s := st.Stats(); s.Entries != 1 {
		t.Fatal("GC removed the only (newest) entry")
	}
}

func TestHitRefreshesRecency(t *testing.T) {
	k, fr := compiled(t)
	k2 := compcache.KeyOf("x", "y", "z")
	st, err := Open(t.TempDir(), 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []compcache.Key{k, k2} {
		if err := st.Put(key, fr); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * time.Hour)
	for _, key := range []compcache.Key{k, k2} {
		if err := os.Chtimes(st.pathOf(key), old, old); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k: it becomes the most recent and must survive a GC that only
	// has room for one entry, even though k2 was written later.
	if _, ok := st.Get(k); !ok {
		t.Fatal("miss")
	}
	st.budget = st.Stats().Bytes / 2
	st.GC()
	if _, err := os.Stat(st.pathOf(k)); err != nil {
		t.Fatal("recently-read entry was evicted")
	}
	if _, err := os.Stat(st.pathOf(k2)); !os.IsNotExist(err) {
		t.Fatal("stale entry survived")
	}
}

func TestSchemaSkewIsMissNotCorruption(t *testing.T) {
	k, fr := compiled(t)
	st, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(k, fr); err != nil {
		t.Fatal(err)
	}
	// Rewrite the entry under a different schema version.
	data, err := os.ReadFile(st.pathOf(k))
	if err != nil {
		t.Fatal(err)
	}
	body, err := encodeWithSchema(fr, schemaVersion+1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.pathOf(k), append([]byte(magic), body...), 0o644); err != nil {
		t.Fatal(err)
	}
	_ = data
	if _, ok := st.Get(k); ok {
		t.Fatal("foreign-schema entry served as a hit")
	}
	s := st.Stats()
	if s.Corrupt != 0 {
		t.Fatal("schema skew miscounted as corruption")
	}
	// The entry is left in place for the binary that wrote it.
	if _, err := os.Stat(st.pathOf(k)); err != nil {
		t.Fatal("foreign-schema entry was quarantined")
	}
}

func TestJournalBlobs(t *testing.T) {
	st, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	j := st.Journal()
	if err := j.Put("job1", []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Put("job2", []byte(`{"b":2}`)); err != nil {
		t.Fatal(err)
	}
	all, err := j.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || string(all["job1"]) != `{"a":1}` {
		t.Fatalf("list %v", all)
	}
	if err := j.Delete("job1"); err != nil {
		t.Fatal(err)
	}
	if err := j.Delete("job1"); err != nil {
		t.Fatal("double delete should be idempotent:", err)
	}
	all, err = j.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 {
		t.Fatalf("list after delete %v", all)
	}
	for _, bad := range []string{"", "a/b", "..", ".", "a\\b"} {
		if err := j.Put(bad, []byte("x")); err == nil {
			t.Fatalf("journal accepted malicious id %q", bad)
		}
	}
}
