package store

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"treegion/internal/core"
	"treegion/internal/eval"
	"treegion/internal/progen"
)

// TestCodecRoundTripMatrix is the codec's property test: over every progen
// preset (including the out-of-suite stress preset) crossed with every
// region former and scheduling heuristic, encode→decode→re-encode must be
// byte-stable (the decoded result serializes to the identical payload — no
// information is normalized away or invented) and the decoded result must
// be semantically equal to the compiled original. Each program contributes
// its first function; the formers and heuristics drive all the layout
// variety the codec can see (tail duplication, if-conversion paths,
// speculation, renaming, merged branches).
func TestCodecRoundTripMatrix(t *testing.T) {
	formers := []eval.RegionKind{eval.BasicBlocks, eval.SLR, eval.Treegion, eval.Superblock, eval.TreegionTD}
	heuristics := []core.Heuristic{core.DepHeight, core.ExitCount, core.GlobalWeight, core.WeightedCount}

	var names []string
	for _, p := range progen.Presets() {
		names = append(names, p.Name)
	}
	names = append(names, "stress")
	// Under -short (the race-detector gate compiles ~10x slower) keep one
	// small preset; the full preset × former × heuristic matrix including
	// stress runs in the plain test pass.
	if testing.Short() {
		names = []string{"compress"}
		heuristics = heuristics[:2]
	}

	for _, name := range names {
		p, ok := progen.PresetByName(name)
		if !ok {
			t.Fatalf("no preset %q", name)
		}
		prog, err := progen.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		profs, err := eval.ProfileProgram(prog)
		if err != nil {
			t.Fatal(err)
		}
		fn, prof := prog.Funcs[0], profs[0]
		for _, kind := range formers {
			for _, h := range heuristics {
				cfg := eval.DefaultConfig()
				cfg.Kind = kind
				cfg.Heuristic = h
				cfg.DominatorParallelism = kind == eval.TreegionTD
				t.Run(name+"/"+cfg.Fingerprint(), func(t *testing.T) {
					fr, err := eval.CompileFunction(fn.Clone(), prof.Clone(), cfg)
					if err != nil {
						t.Fatal(err)
					}
					b1, err := encode(fr)
					if err != nil {
						t.Fatal(err)
					}
					fr2, err := decode(b1)
					if err != nil {
						t.Fatalf("decode of a fresh encoding failed: %v", err)
					}
					b2, err := encode(fr2)
					if err != nil {
						t.Fatalf("re-encode of a decoded result failed: %v", err)
					}
					if !bytes.Equal(b1, b2) {
						t.Fatalf("re-encoding is not byte-stable: %d vs %d bytes", len(b1), len(b2))
					}
					requireEquivalent(t, fr, fr2)
				})
			}
		}
	}
}

// sectionTable reads the payload's section table rows as (id, offset,
// length) triples so corruption tests can surgically rewrite them.
func sectionTable(t *testing.T, body []byte) (n int, rows [][3]uint64) {
	t.Helper()
	le := binary.LittleEndian
	if len(body) < 8 {
		t.Fatal("payload too short for a header")
	}
	n = int(le.Uint32(body[4:]))
	for i := 0; i < n; i++ {
		row := body[8+i*secHdrSize:]
		rows = append(rows, [3]uint64{uint64(le.Uint32(row)), le.Uint64(row[8:]), le.Uint64(row[16:])})
	}
	return n, rows
}

// putRow writes one section-table row back.
func putRow(body []byte, i int, row [3]uint64) {
	le := binary.LittleEndian
	p := body[8+i*secHdrSize:]
	le.PutUint32(p, uint32(row[0]))
	le.PutUint64(p[8:], row[1])
	le.PutUint64(p[16:], row[2])
}

// TestCorruptSectionFixtures: every malformed-section-table shape — a table
// truncated mid-row, an offset pointing past the payload, overlapping
// section ranges, a gap between sections — must decode to an error (which
// the store turns into a quarantined miss), never a panic, and never a
// result built from garbage.
func TestCorruptSectionFixtures(t *testing.T) {
	_, fr := compiled(t)
	body, err := encode(fr)
	if err != nil {
		t.Fatal(err)
	}

	fixtures := map[string]func([]byte) []byte{
		"truncated-section-table": func(b []byte) []byte {
			// Keep the header (schema + count) and half of the first row:
			// the table promises more rows than the payload holds.
			return b[:8+secHdrSize/2]
		},
		"offset-past-payload": func(b []byte) []byte {
			_, rows := sectionTable(t, b)
			rows[0][1] = uint64(len(b)) + 1024
			putRow(b, 0, rows[0])
			return b
		},
		"length-past-payload": func(b []byte) []byte {
			_, rows := sectionTable(t, b)
			rows[0][2] = uint64(len(b))
			putRow(b, 0, rows[0])
			return b
		},
		"overlapping-sections": func(b []byte) []byte {
			_, rows := sectionTable(t, b)
			// Pull section 2 back so it overlaps section 1's bytes.
			rows[1][1] = rows[0][1]
			putRow(b, 1, rows[1])
			return b
		},
		"non-contiguous-sections": func(b []byte) []byte {
			n, rows := sectionTable(t, b)
			// Shrink the first section without moving the rest: a gap of
			// unaccounted bytes opens between sections.
			if rows[0][2] < 2 {
				t.Fatal("first section too small to shrink")
			}
			rows[0][2]--
			putRow(b, 0, rows[0])
			_ = n
			return b
		},
		"duplicate-section-id": func(b []byte) []byte {
			_, rows := sectionTable(t, b)
			rows[1][0] = rows[0][0]
			putRow(b, 1, rows[1])
			return b
		},
		"section-count-overflow": func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], maxSections+1)
			return b
		},
	}

	names := make([]string, 0, len(fixtures))
	for name := range fixtures {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mutate := fixtures[name]
		t.Run(name, func(t *testing.T) {
			mutated := mutate(bytes.Clone(body))

			// The codec itself must reject the payload with an error.
			if fr, err := decode(mutated); err == nil {
				t.Fatalf("decode accepted a %s payload (got result for %q)", name, fr.Fn.Name)
			} else if err == errSchemaSkew {
				t.Fatalf("%s read as schema skew, want corruption", name)
			}

			// Planted as a store entry it must read as a quarantined miss.
			dir := t.TempDir()
			st, err := Open(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			k, _ := compiled(t)
			path := st.pathOf(k)
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, append([]byte(magic), mutated...), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := st.Get(k); ok {
				t.Fatalf("%s entry served as a hit", name)
			}
			if s := st.Stats(); s.Corrupt != 1 || s.SchemaSkew != 0 {
				t.Fatalf("%s: stats %+v, want exactly one corrupt quarantine", name, s)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("%s entry not quarantined", name)
			}
		})
	}
}
