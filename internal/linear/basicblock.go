// Package linear forms the paper's three linear baseline regions: basic
// blocks, simple linear regions (SLRs), and superblocks. Linear regions are
// represented with the same tree Region type the treegion formers use (a
// path is a degenerate tree), so one scheduler serves everything.
package linear

import (
	"treegion/internal/ir"
	"treegion/internal/region"
)

// BasicBlocks makes each block of fn its own region — the paper's baseline.
func BasicBlocks(fn *ir.Function) []*region.Region {
	out := make([]*region.Region, 0, len(fn.Blocks))
	for _, b := range fn.Blocks {
		out = append(out, region.New(fn, region.KindBasicBlock, b.ID))
	}
	return out
}
