package linear

import (
	"testing"

	"treegion/internal/cfg"
	"treegion/internal/interp"
	"treegion/internal/ir"
	"treegion/internal/profile"
	"treegion/internal/progen"
	"treegion/internal/region"
)

func TestBasicBlocks(t *testing.T) {
	f := ir.NewFunction("t")
	b0, b1 := f.NewBlock(), f.NewBlock()
	b0.FallThrough = b1.ID
	f.EmitRet(b1)
	regions := BasicBlocks(f)
	if len(regions) != 2 {
		t.Fatalf("got %d regions, want 2", len(regions))
	}
	if err := region.CheckPartition(f, regions); err != nil {
		t.Fatal(err)
	}
	for _, r := range regions {
		if len(r.Blocks) != 1 {
			t.Fatal("basic-block regions must be singletons")
		}
	}
}

// branchMerge builds: bb0 -> bb1 (0.7) / bb2; both -> bb3; bb3 -> ret
func branchMerge(t *testing.T) (*ir.Function, *profile.Data) {
	t.Helper()
	f := ir.NewFunction("bm")
	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	p := f.NewReg(ir.ClassPred)
	f.EmitALU(b0, ir.Add, f.NewReg(ir.ClassGPR), ir.GPR(0), ir.GPR(1))
	f.EmitBrct(b0, ir.NoReg, p, b1.ID, 0.7)
	b0.FallThrough = b2.ID
	f.EmitALU(b1, ir.Add, f.NewReg(ir.ClassGPR), ir.GPR(0), ir.GPR(1))
	b1.FallThrough = b3.ID
	f.EmitALU(b2, ir.Sub, f.NewReg(ir.ClassGPR), ir.GPR(0), ir.GPR(1))
	b2.FallThrough = b3.ID
	f.EmitALU(b3, ir.Xor, f.NewReg(ir.ClassGPR), ir.GPR(0), ir.GPR(1))
	f.EmitRet(b3)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	prof, err := interp.Profile(f, 11, 1000, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return f, prof
}

func TestSLRsFollowHotPath(t *testing.T) {
	f, prof := branchMerge(t)
	g := cfg.New(f)
	regions := SLRs(f, g, prof)
	if err := region.CheckPartition(f, regions); err != nil {
		t.Fatal(err)
	}
	// bb0+bb1 is the hot SLR; bb2 and bb3 (merge) stand alone.
	var root0 *region.Region
	for _, r := range regions {
		if r.Root == 0 {
			root0 = r
		}
	}
	if root0 == nil || len(root0.Blocks) != 2 || root0.Blocks[1] != 1 {
		t.Fatalf("hot SLR = %v, want [bb0 bb1]", root0)
	}
	// SLRs are linear: every block has at most one child.
	for _, r := range regions {
		for _, b := range r.Blocks {
			if len(r.Children(b)) > 1 {
				t.Fatalf("SLR %v is not linear", r)
			}
		}
	}
}

func TestSLRsOnSuite(t *testing.T) {
	progs, err := progen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, prog := range progs {
		for _, fn := range prog.Funcs {
			g := cfg.New(fn)
			prof, err := interp.Profile(fn, 5, 30, interp.Config{})
			if err != nil {
				t.Fatal(err)
			}
			regions := SLRs(fn, g, prof)
			if err := region.CheckPartition(fn, regions); err != nil {
				t.Fatalf("%s/%s: %v", prog.Name, fn.Name, err)
			}
			for _, r := range regions {
				if err := r.Validate(); err != nil {
					t.Fatal(err)
				}
				for _, b := range r.Blocks {
					if len(r.Children(b)) > 1 {
						t.Fatalf("%s: SLR has branching tree", prog.Name)
					}
				}
			}
		}
	}
}

func TestSuperblocksRemoveSideEntrances(t *testing.T) {
	f, prof := branchMerge(t)
	regions := Superblocks(f, prof, DefaultSuperblockConfig())
	if err := region.CheckPartition(f, regions); err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// The hot trace bb0-bb1-bb3 must be single-entry: bb3's copy handles the
	// bb2 entrance. So bb3 must now have exactly one predecessor.
	preds := computePreds(f)
	for _, r := range regions {
		if !r.FromTrace {
			continue
		}
		for i, b := range r.Blocks {
			if i == 0 {
				continue
			}
			if len(preds[b]) != 1 {
				t.Fatalf("superblock member bb%d has %d preds", b, len(preds[b]))
			}
		}
	}
	// A duplicate of bb3 must exist.
	foundDup := false
	for _, b := range f.Blocks {
		if b.Orig == 3 && b.ID != 3 {
			foundDup = true
		}
	}
	if !foundDup {
		t.Fatal("no tail duplicate of the merge block")
	}
}

func TestSuperblocksPreserveSemantics(t *testing.T) {
	progs, err := progen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, prog := range progs[:4] {
		for _, fn := range prog.Funcs[:2] {
			orig := fn.Clone()
			prof, err := interp.Profile(fn, 13, 40, interp.Config{})
			if err != nil {
				t.Fatal(err)
			}
			Superblocks(fn, prof, DefaultSuperblockConfig())
			if err := fn.Validate(); err != nil {
				t.Fatalf("%s: invalid after superblock formation: %v", fn.Name, err)
			}
			for seed := uint64(0); seed < 10; seed++ {
				a, errA := interp.Run(orig, interp.NewOracle(seed), interp.Config{MaxSteps: 2_000_000})
				b, errB := interp.Run(fn, interp.NewOracle(seed), interp.Config{MaxSteps: 2_000_000})
				if errA != nil || errB != nil {
					t.Fatalf("%s: run errors: %v / %v", fn.Name, errA, errB)
				}
				if len(a.Blocks) != len(b.Blocks) || len(a.Stores) != len(b.Stores) {
					t.Fatalf("%s seed %d: traces diverge after superblock formation", fn.Name, seed)
				}
				for i := range a.Blocks {
					if a.Blocks[i] != b.Blocks[i] {
						t.Fatalf("%s seed %d: path diverges at step %d", fn.Name, seed, i)
					}
				}
				for i := range a.Stores {
					if a.Stores[i] != b.Stores[i] {
						t.Fatalf("%s seed %d: store %d diverges", fn.Name, seed, i)
					}
				}
			}
		}
	}
}

func TestSuperblocksSingleEntryInvariant(t *testing.T) {
	progs, err := progen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, prog := range progs {
		for _, fn := range prog.Funcs[:1] {
			prof, err := interp.Profile(fn, 17, 30, interp.Config{})
			if err != nil {
				t.Fatal(err)
			}
			regions := Superblocks(fn, prof, DefaultSuperblockConfig())
			if err := region.CheckPartition(fn, regions); err != nil {
				t.Fatalf("%s: %v", prog.Name, err)
			}
			preds := computePreds(fn)
			for _, r := range regions {
				if !r.FromTrace {
					continue
				}
				for i, b := range r.Blocks {
					if i == 0 {
						continue
					}
					if len(preds[b]) != 1 {
						t.Fatalf("%s/%s: trace block bb%d has %d preds (side entrance left)",
							prog.Name, fn.Name, b, len(preds[b]))
					}
				}
			}
		}
	}
}

func TestSuperblockProfileConserved(t *testing.T) {
	f, prof := branchMerge(t)
	before := prof.Total()
	Superblocks(f, prof, DefaultSuperblockConfig())
	after := prof.Total()
	if diff := after - before; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("profile mass changed: %v -> %v", before, after)
	}
}

func TestFirstInternalTarget(t *testing.T) {
	f := ir.NewFunction("t")
	b := make([]*ir.Block, 4)
	for i := range b {
		b[i] = f.NewBlock()
	}
	p := f.NewReg(ir.ClassPred)
	b[0].FallThrough = b[1].ID
	b[1].FallThrough = b[2].ID
	f.EmitBrct(b[2], ir.NoReg, p, b[1].ID, 0.5) // back edge into trace middle
	b[2].FallThrough = b[3].ID
	f.EmitRet(b[3])
	trace := []ir.BlockID{0, 1, 2, 3}
	if got := firstInternalTarget(f, trace); got != 1 {
		t.Fatalf("firstInternalTarget = %d, want 1", got)
	}
	// A back edge to the head is fine.
	f2 := ir.NewFunction("t2")
	c := make([]*ir.Block, 3)
	for i := range c {
		c[i] = f2.NewBlock()
	}
	q := f2.NewReg(ir.ClassPred)
	c[0].FallThrough = c[1].ID
	f2.EmitBrct(c[1], ir.NoReg, q, c[0].ID, 0.5)
	c[1].FallThrough = c[2].ID
	f2.EmitRet(c[2])
	if got := firstInternalTarget(f2, []ir.BlockID{0, 1, 2}); got != -1 {
		t.Fatalf("head back edge flagged: %d", got)
	}
}
