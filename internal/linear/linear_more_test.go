package linear

import (
	"testing"

	"treegion/internal/cfg"
	"treegion/internal/interp"
	"treegion/internal/ir"
	"treegion/internal/profile"
	"treegion/internal/region"
)

// mutualMostLikely exercises the Hwu/Chang growth rule: a trace must stop
// when the next block's heaviest incoming edge comes from elsewhere.
func TestTraceStopsWithoutMutualMostLikely(t *testing.T) {
	// b0 -> b2 (60); b1 -> b2 (100); b0/b1 fed from entry e.
	f := ir.NewFunction("mml")
	e, b0, b1, b2, x := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	p := f.NewReg(ir.ClassPred)
	f.EmitCmpp(e, p, ir.NoReg, ir.CondGT, ir.GPR(0), ir.GPR(0))
	f.EmitBrct(e, ir.NoReg, p, b0.ID, 0.375)
	e.FallThrough = b1.ID
	b0.FallThrough = b2.ID
	b1.FallThrough = b2.ID
	b2.FallThrough = x.ID
	f.EmitRet(x)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	prof := profile.New()
	prof.AddBlock(e.ID, 160)
	prof.AddBlock(b0.ID, 60)
	prof.AddBlock(b1.ID, 100)
	prof.AddBlock(b2.ID, 160)
	prof.AddBlock(x.ID, 160)
	prof.AddEdge(e.ID, b0.ID, 60)
	prof.AddEdge(e.ID, b1.ID, 100)
	prof.AddEdge(b0.ID, b2.ID, 60)
	prof.AddEdge(b1.ID, b2.ID, 100)
	prof.AddEdge(b2.ID, x.ID, 160)

	regions := Superblocks(f, prof, DefaultSuperblockConfig())
	if err := region.CheckPartition(f, regions); err != nil {
		t.Fatal(err)
	}
	// The hottest seed is e (160): its trace is e -> b1 -> b2 -> x (b1 is
	// e's best successor AND e->b1 is b1's best pred). A trace from b0 must
	// NOT continue into b2 (b2's heaviest pred is b1): b0 stays alone or...
	for _, r := range regions {
		if !r.FromTrace {
			continue
		}
		if r.Root == b0.ID && r.Contains(b2.ID) {
			t.Fatalf("trace from b0 crossed a non-mutual-most-likely edge: %v", r)
		}
	}
}

func TestSuperblockColdCodeIsBasicBlocks(t *testing.T) {
	// Zero-weight blocks must be covered as single-block filler regions.
	f := ir.NewFunction("cold")
	b0, cold, hot := f.NewBlock(), f.NewBlock(), f.NewBlock()
	p := f.NewReg(ir.ClassPred)
	f.EmitCmpp(b0, p, ir.NoReg, ir.CondGT, ir.GPR(0), ir.GPR(0))
	f.EmitBrct(b0, ir.NoReg, p, cold.ID, 0)
	b0.FallThrough = hot.ID
	f.EmitALU(cold, ir.Add, f.NewReg(ir.ClassGPR), ir.GPR(0), ir.GPR(0))
	cold.FallThrough = hot.ID
	f.EmitRet(hot)
	prof := profile.New()
	prof.AddBlock(b0.ID, 10)
	prof.AddBlock(hot.ID, 10)
	prof.AddEdge(b0.ID, hot.ID, 10)

	regions := Superblocks(f, prof, DefaultSuperblockConfig())
	if err := region.CheckPartition(f, regions); err != nil {
		t.Fatal(err)
	}
	for _, r := range regions {
		if r.Contains(cold.ID) {
			if r.FromTrace || len(r.Blocks) != 1 {
				t.Fatalf("cold block not left as a basic block: %v", r)
			}
		}
	}
}

func TestSuperblockExpansionLimitFallback(t *testing.T) {
	// With a tight expansion limit, traces with side entrances split
	// instead of duplicating — no code growth at all under limit 1.0.
	progFn := func() (*ir.Function, *profile.Data) {
		f := ir.NewFunction("lim")
		b0, b1, m, x := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
		p := f.NewReg(ir.ClassPred)
		f.EmitCmpp(b0, p, ir.NoReg, ir.CondGT, ir.GPR(0), ir.GPR(0))
		f.EmitBrct(b0, ir.NoReg, p, b1.ID, 0.3)
		b0.FallThrough = m.ID
		b1.FallThrough = m.ID
		f.EmitALU(m, ir.Add, f.NewReg(ir.ClassGPR), ir.GPR(0), ir.GPR(0))
		m.FallThrough = x.ID
		f.EmitRet(x)
		prof, err := interp.Profile(f, 3, 100, interp.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return f, prof
	}
	f, prof := progFn()
	before := f.NumOps()
	regions := Superblocks(f, prof, SuperblockConfig{MaxTraceLen: 8, ExpansionLimit: 0.5})
	if f.NumOps() != before {
		t.Fatalf("code grew under an exhausted expansion budget: %d -> %d", before, f.NumOps())
	}
	if err := region.CheckPartition(f, regions); err != nil {
		t.Fatal(err)
	}

	// With the default limit, the merge is duplicated away.
	f2, prof2 := progFn()
	before2 := f2.NumOps()
	Superblocks(f2, prof2, DefaultSuperblockConfig())
	if f2.NumOps() <= before2 {
		t.Fatal("no duplication under the default limit")
	}
}

func TestSLRStopsAtZeroWeightEdge(t *testing.T) {
	// SLRs follow the best successor even with weight zero? The paper's
	// formation uses the highest-weight successor; with all-zero profiles
	// growth still proceeds (ties resolve in arm order) but must stop at
	// merges. Verify partition integrity on an unprofiled function.
	f := ir.NewFunction("zero")
	b0, b1, b2 := f.NewBlock(), f.NewBlock(), f.NewBlock()
	b0.FallThrough = b1.ID
	b1.FallThrough = b2.ID
	f.EmitRet(b2)
	g := cfg.New(f)
	regions := SLRs(f, g, profile.New())
	if err := region.CheckPartition(f, regions); err != nil {
		t.Fatal(err)
	}
	if len(regions) != 1 {
		t.Fatalf("merge-free chain should be one SLR, got %d", len(regions))
	}
}
