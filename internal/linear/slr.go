package linear

import (
	"treegion/internal/cfg"
	"treegion/internal/ir"
	"treegion/internal/profile"
	"treegion/internal/region"
)

// SLRs forms simple linear regions over fn: single-entry, multiple-exit
// paths grown exactly like treegions except that from each block only the
// successor with the highest profile weight is considered for inclusion
// (Section 3 of the paper), and no tail duplication is performed.
//
// Every block ends up in exactly one region; saplings (blocks stopped at)
// seed new regions, as in treegion formation.
func SLRs(fn *ir.Function, g *cfg.Graph, prof *profile.Data) []*region.Region {
	var out []*region.Region
	inRegion := make(map[ir.BlockID]bool)
	queue := []ir.BlockID{fn.Entry}
	// Unreachable blocks still need regions (scheduling covers all code);
	// append them to the worklist after the entry so reachable code claims
	// blocks first.
	for _, b := range fn.Blocks {
		if !g.Reachable(b.ID) {
			queue = append(queue, b.ID)
		}
	}
	for len(queue) > 0 {
		root := queue[0]
		queue = queue[1:]
		if inRegion[root] {
			continue
		}
		r := region.New(fn, region.KindSLR, root)
		inRegion[root] = true
		// Grow along the best-weighted successor chain.
		cur := root
		for {
			next, _ := prof.BestSucc(fn, cur)
			if next == ir.NoBlock || inRegion[next] || g.IsMergePoint(next) {
				break
			}
			r.Add(next, cur)
			inRegion[next] = true
			cur = next
		}
		out = append(out, r)
		// Every successor not in a region is a sapling rooting a new one.
		for _, b := range r.Blocks {
			for _, s := range fn.Block(b).Succs() {
				if !inRegion[s] {
					queue = append(queue, s)
				}
			}
		}
	}
	return out
}
