package linear

import (
	"slices"

	"treegion/internal/ir"
	"treegion/internal/profile"
	"treegion/internal/region"
)

// SuperblockConfig bounds superblock formation.
type SuperblockConfig struct {
	// MaxTraceLen bounds trace growth.
	MaxTraceLen int
	// ExpansionLimit caps the function's static-op growth factor from tail
	// duplication; once exceeded, remaining traces are split at their side
	// entrances instead of duplicating.
	ExpansionLimit float64
}

// DefaultSuperblockConfig mirrors customary IMPACT-style settings.
func DefaultSuperblockConfig() SuperblockConfig {
	return SuperblockConfig{MaxTraceLen: 64, ExpansionLimit: 3.0}
}

// Superblocks forms superblocks over fn: profile-driven trace selection
// (mutual-most-likely growth over executed blocks) followed by tail
// duplication that removes every side entrance, leaving each trace a
// single-entry multiple-exit region. Code the profile never saw is covered
// by leftover regions so the whole function remains partitioned.
//
// Returned regions with FromTrace set are the actual superblocks (what the
// paper's Table 4 counts); the rest are cold-code filler.
func Superblocks(fn *ir.Function, prof *profile.Data, cfgc SuperblockConfig) []*region.Region {
	if cfgc.MaxTraceLen <= 0 {
		cfgc.MaxTraceLen = 64
	}
	if cfgc.ExpansionLimit <= 0 {
		cfgc.ExpansionLimit = 3.0
	}
	origOps := fn.NumOps()

	// --- Trace selection over the unmodified CFG. ---
	seeds := make([]ir.BlockID, 0, len(fn.Blocks))
	for _, b := range fn.Blocks {
		if prof.BlockWeight(b.ID) > 0 {
			seeds = append(seeds, b.ID)
		}
	}
	slices.SortFunc(seeds, func(a, b ir.BlockID) int {
		wa, wb := prof.BlockWeight(a), prof.BlockWeight(b)
		switch {
		case wa > wb:
			return -1
		case wa < wb:
			return 1
		}
		return int(a) - int(b)
	})

	preds := computePreds(fn)
	claimed := make(map[ir.BlockID]bool)
	var traces [][]ir.BlockID
	for _, seed := range seeds {
		if claimed[seed] {
			continue
		}
		trace := []ir.BlockID{seed}
		claimed[seed] = true
		cur := seed
		for len(trace) < cfgc.MaxTraceLen {
			next, w := prof.BestSucc(fn, cur)
			if next == ir.NoBlock || w <= 0 || claimed[next] {
				break
			}
			// Mutual-most-likely: the edge must also be next's heaviest
			// incoming edge, or the trace stops (Hwu/Chang trace selection).
			if !bestPredIs(prof, preds[next], cur, next) {
				break
			}
			trace = append(trace, next)
			claimed[next] = true
			cur = next
		}
		// An intra-trace edge targeting a non-head position (a back edge
		// into the trace middle, i.e. the trace crossed a loop entry) would
		// defeat side-entrance removal: the duplicate chain would re-create
		// the entrance. Truncate the trace just before the first such
		// target — IMPACT traces do not cross loop boundaries either.
		if cut := firstInternalTarget(fn, trace); cut >= 0 {
			for _, b := range trace[cut:] {
				delete(claimed, b)
			}
			trace = trace[:cut]
		}
		traces = append(traces, trace)
	}

	// --- Tail duplication: remove side entrances from each trace. ---
	var regions []*region.Region
	for _, trace := range traces {
		preds = computePreds(fn) // earlier traces may have re-routed edges
		first := -1
		sideW := make([]float64, len(trace))
		for j := 1; j < len(trace); j++ {
			for _, p := range preds[trace[j]] {
				if p != trace[j-1] {
					sideW[j] += prof.EdgeWeight(p, trace[j])
					if first < 0 {
						first = j
					}
				}
			}
		}
		if first < 0 {
			// Already single-entry; the whole trace is one superblock.
			regions = append(regions, traceRegion(fn, trace))
			continue
		}
		if float64(fn.NumOps()) > cfgc.ExpansionLimit*float64(origOps) {
			// Expansion budget exhausted: split the trace at its first side
			// entrance instead of duplicating.
			regions = append(regions, traceRegion(fn, trace[:first]))
			regions = append(regions, traceRegion(fn, trace[first:]))
			continue
		}

		// One duplicate chain covers the tail from the first side entrance;
		// every side entrance at position j re-routes into the chain at d_j.
		dups := make([]*ir.Block, len(trace))
		for j := first; j < len(trace); j++ {
			dups[j] = fn.DuplicateBlock(fn.Block(trace[j]))
		}
		inW := 0.0
		for j := first; j < len(trace); j++ {
			inW += sideW[j]
			prof.SplitBlock(fn, trace[j], dups[j].ID, inW)
			if j+1 < len(trace) {
				inW = prof.EdgeWeight(dups[j].ID, trace[j+1])
				prof.MoveEdge(dups[j].ID, trace[j+1], dups[j+1].ID)
				dups[j].ReplaceSucc(trace[j+1], dups[j+1].ID)
			}
			for _, p := range preds[trace[j]] {
				if p == trace[j-1] {
					continue
				}
				prof.MoveEdge(p, trace[j], dups[j].ID)
				fn.Block(p).ReplaceSucc(trace[j], dups[j].ID)
			}
		}
		regions = append(regions, traceRegion(fn, trace))
	}

	// --- Cover everything else as plain basic blocks (IMPACT leaves
	// non-trace code unregioned: cold blocks and duplicate chains get no
	// cross-block scheduling scope). ---
	inRegion := make(map[ir.BlockID]bool)
	for _, r := range regions {
		for _, b := range r.Blocks {
			inRegion[b] = true
		}
	}
	for _, b := range fn.Blocks {
		if inRegion[b.ID] {
			continue
		}
		regions = append(regions, region.New(fn, region.KindSuperblock, b.ID))
	}
	return regions
}

// traceRegion wraps a chain of blocks as a FromTrace superblock region.
func traceRegion(fn *ir.Function, trace []ir.BlockID) *region.Region {
	r := region.New(fn, region.KindSuperblock, trace[0])
	r.FromTrace = true
	for i := 1; i < len(trace); i++ {
		r.Add(trace[i], trace[i-1])
	}
	return r
}

// firstInternalTarget returns the smallest j >= 1 such that some trace block
// at position >= j has an edge to trace[j] other than the forward link, or
// -1 if the trace is clean.
func firstInternalTarget(fn *ir.Function, trace []ir.BlockID) int {
	pos := make(map[ir.BlockID]int, len(trace))
	for i, b := range trace {
		pos[b] = i
	}
	best := -1
	for k, b := range trace {
		for _, s := range fn.Block(b).Succs() {
			j, ok := pos[s]
			if !ok || j == 0 || j == k+1 {
				continue
			}
			if best < 0 || j < best {
				best = j
			}
		}
	}
	return best
}

// computePreds scans the function for the current predecessor lists.
func computePreds(fn *ir.Function) map[ir.BlockID][]ir.BlockID {
	preds := make(map[ir.BlockID][]ir.BlockID, len(fn.Blocks))
	for _, b := range fn.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b.ID)
		}
	}
	return preds
}

// bestPredIs reports whether (cand→next) is next's heaviest incoming edge.
func bestPredIs(prof *profile.Data, preds []ir.BlockID, cand, next ir.BlockID) bool {
	w := prof.EdgeWeight(cand, next)
	for _, p := range preds {
		if pw := prof.EdgeWeight(p, next); pw > w {
			return false
		}
	}
	return true
}
