package treegion

import (
	"context"
	"testing"

	"treegion/internal/cfg"
	"treegion/internal/core"
)

// A single shared suite keeps the experiment tests affordable.
var expSuite *Suite

func getSuite(t *testing.T) *Suite {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment suites are not short")
	}
	if expSuite == nil {
		s, err := NewSuite()
		if err != nil {
			t.Fatal(err)
		}
		expSuite = s
	}
	return expSuite
}

func TestFigure13Shape(t *testing.T) {
	s := getSuite(t)
	rows, _, err := s.Figure13()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: tail-duplicated treegions beat superblocks on
	// the 8U machine, and the 3.0 limit beats the 2.0 limit.
	sb := GeoMean(rows, "sb/8U")
	t20 := GeoMean(rows, "tree2.0/8U")
	t30 := GeoMean(rows, "tree3.0/8U")
	if t20 <= sb {
		t.Errorf("tree-td(2.0) %v must beat superblocks %v at 8U", t20, sb)
	}
	if t30 <= t20 {
		t.Errorf("tree-td(3.0) %v must beat tree-td(2.0) %v at 8U", t30, t20)
	}
}

func TestFigure8Shape(t *testing.T) {
	s := getSuite(t)
	rows, _, err := s.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	gw := GeoMean(rows, "globalweight/4U")
	dh := GeoMean(rows, "depheight/4U")
	if gw <= dh {
		t.Errorf("global weight %v must beat dep-height %v at 4U (the paper's best heuristic)", gw, dh)
	}
}

func TestFigure6Shape(t *testing.T) {
	s := getSuite(t)
	rows, _, err := s.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	// Everyone beats the baseline, and treegions beat SLRs at 8 issue slots.
	for _, label := range []string{"bb/4U", "slr/4U", "tree/4U", "bb/8U", "slr/8U", "tree/8U"} {
		if g := GeoMean(rows, label); g <= 1 {
			t.Errorf("%s geomean %v not above 1", label, g)
		}
	}
	if GeoMean(rows, "tree/8U") <= GeoMean(rows, "slr/8U") {
		t.Error("treegions must beat SLRs at 8U")
	}
}

func TestResourcesShape(t *testing.T) {
	s := getSuite(t)
	rows, _, err := s.Resources()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Utilization["tree"] <= r.Utilization["bb"] {
			t.Errorf("%s: treegion utilization %.3f not above basic blocks %.3f",
				r.Benchmark, r.Utilization["tree"], r.Utilization["bb"])
		}
		if r.AvgPressure["tree"] <= r.AvgPressure["bb"] {
			t.Errorf("%s: treegion pressure %.2f not above basic blocks %.2f",
				r.Benchmark, r.AvgPressure["tree"], r.AvgPressure["bb"])
		}
	}
}

func TestRegistersShape(t *testing.T) {
	s := getSuite(t)
	rows, sizes, err := s.Registers()
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) < 2 {
		t.Fatal("need a sweep")
	}
	for _, r := range rows {
		// Spill density must not increase with file size.
		for i := 1; i < len(sizes); i++ {
			if r.SpillsPerKOp[sizes[i]] > r.SpillsPerKOp[sizes[i-1]]+1e-9 {
				t.Errorf("%s: spills grew from %d to %d registers", r.Benchmark, sizes[i-1], sizes[i])
			}
		}
	}
}

func TestWideMachinesShape(t *testing.T) {
	s := getSuite(t)
	rows, _, err := s.WideMachines()
	if err != nil {
		t.Fatal(err)
	}
	// The tree-over-SLR margin must grow with issue width (the headroom
	// trend).
	m8 := GeoMean(rows, "tree/8U") / GeoMean(rows, "slr/8U")
	m16 := GeoMean(rows, "tree/16U") / GeoMean(rows, "slr/16U")
	if m16 <= m8 {
		t.Errorf("tree/slr margin shrank with width: %v at 8U, %v at 16U", m8, m16)
	}
}

func TestAblationShape(t *testing.T) {
	s := getSuite(t)
	rows, _, err := s.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if GeoMean(rows, "tree") <= GeoMean(rows, "rename-off") {
		t.Error("renaming must help (the paper's enabling mechanism)")
	}
	if GeoMean(rows, "td-2.0") < GeoMean(rows, "dompar-off") {
		t.Error("dominator parallelism must not hurt")
	}
}

// TestStress2PresetSmoke proves the asymptotic stress tier generates
// deterministically and actually delivers the rank spaces it exists for:
// regions past the bitmap scheduler's 4096-rank level-1 seam, an order of
// magnitude beyond anything stress produces. One sliced function is then
// compiled serially and in parallel to prove cycle-identical results.
func TestStress2PresetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("stress2 preset is not short")
	}
	prog, err := GenerateBenchmark("stress2")
	if err != nil {
		t.Fatal(err)
	}
	again, err := GenerateBenchmark("stress2")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funcs) != len(again.Funcs) {
		t.Fatalf("stress2 generation not deterministic: %d vs %d functions",
			len(prog.Funcs), len(again.Funcs))
	}
	for i := range prog.Funcs {
		if a, b := prog.Funcs[i].NumOps(), again.Funcs[i].NumOps(); a != b {
			t.Fatalf("stress2 generation not deterministic: func %d has %d vs %d ops", i, a, b)
		}
	}
	// The tier's reason to exist: regions whose rank space crosses the
	// bitmap's level-1 word seam (4096 ranks).
	huge := 0
	for _, fn := range prog.Funcs {
		f := fn.Clone()
		g := cfg.New(f)
		for _, r := range core.Form(f, g) {
			n := 0
			for _, bid := range r.Blocks {
				n += len(f.Blocks[bid].Ops)
			}
			if n > 4096 {
				huge++
			}
		}
	}
	if huge < 10 {
		t.Fatalf("stress2 yields %d regions past 4096 ops, want >= 10", huge)
	}
	prog.Funcs = prog.Funcs[:1]
	prog.Preset.NumFuncs = 1
	profs, err := ProfileProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	c := DefaultConfig()
	ctx := context.Background()
	serial, err := Compile(ctx, prog, profs, c, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Compile(ctx, prog, profs, c, WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if serial.Time != parallel.Time || serial.CodeExpansion != parallel.CodeExpansion {
		t.Fatalf("8-worker compile diverged from serial: time %v vs %v, expansion %v vs %v",
			parallel.Time, serial.Time, parallel.CodeExpansion, serial.CodeExpansion)
	}
}

// TestStressPresetSmoke proves the out-of-suite stress preset (the corpus
// behind BenchmarkCompileStress and treegion-loadgen) generates, profiles
// and compiles cleanly, and that the work-stealing pool at 8 workers is
// cycle-identical to a serial compile on it. A slice of the preset keeps
// the smoke test affordable; the full 24×7000-op program runs under make
// bench.
func TestStressPresetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("stress preset is not short")
	}
	prog, err := GenerateBenchmark("stress")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funcs) < 20 {
		t.Fatalf("stress preset has %d functions, want >= 20", len(prog.Funcs))
	}
	ops := 0
	for _, fn := range prog.Funcs {
		ops += fn.NumOps()
	}
	if avg := ops / len(prog.Funcs); avg < 3000 {
		t.Fatalf("stress functions average %d ops, want the 10x-scale corpus", avg)
	}
	prog.Funcs = prog.Funcs[:4]
	prog.Preset.NumFuncs = 4
	profs, err := ProfileProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	ctx := context.Background()
	serial, err := Compile(ctx, prog, profs, cfg, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Compile(ctx, prog, profs, cfg, WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if serial.Time != parallel.Time || serial.CodeExpansion != parallel.CodeExpansion {
		t.Fatalf("8-worker compile diverged from serial: time %v vs %v, expansion %v vs %v",
			parallel.Time, serial.Time, parallel.CodeExpansion, serial.CodeExpansion)
	}
}
