// The tailduplication example shows Section 4 of the paper in action on one
// benchmark: treegion formation with tail duplication at several code
// expansion limits, versus superblock formation — a single-benchmark slice
// of Table 3 and Figure 13. It also reports how many duplicated ops the
// scheduler's dominator-parallelism pass merged back out of the schedules.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"treegion"
)

func main() {
	bench := flag.String("bench", "ijpeg", "benchmark to compile")
	flag.Parse()

	prog, err := treegion.GenerateBenchmark(*bench)
	if err != nil {
		log.Fatal(err)
	}
	profs, err := treegion.ProfileProgram(prog)
	if err != nil {
		log.Fatal(err)
	}
	base, err := treegion.Compile(context.Background(), prog, profs, treegion.BaselineConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on the 8-issue machine (speedup over 1-issue basic blocks)\n\n", prog.Name)
	fmt.Printf("%-14s %9s %10s %8s %8s\n", "formation", "speedup", "expansion", "paths", "merged")

	// Superblocks: the paper's linear competitor.
	sb := treegion.Config{
		Kind: treegion.Superblock, Heuristic: treegion.GlobalWeight,
		Machine: treegion.EightU, Rename: false,
	}
	res, err := treegion.Compile(context.Background(), prog, profs, sb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %9.3f %10.2f %8s %8s\n", "superblock",
		treegion.Speedup(base.Time, res.Time), res.CodeExpansion, "-", "-")

	// Treegions with tail duplication at increasing expansion limits.
	for _, limit := range []float64{1.0, 2.0, 3.0} {
		cfg := treegion.Config{
			Kind: treegion.TreegionTD, Heuristic: treegion.GlobalWeight,
			Machine: treegion.EightU, Rename: true, DominatorParallelism: true,
			TD: treegion.TDConfig{ExpansionLimit: limit, PathLimit: 20, MergeLimit: 4},
		}
		res, err := treegion.Compile(context.Background(), prog, profs, cfg)
		if err != nil {
			log.Fatal(err)
		}
		maxPaths, merged := 0, 0
		for _, f := range res.Funcs {
			merged += f.NumMerged
			for _, r := range f.Regions {
				if p := r.PathCount(); p > maxPaths {
					maxPaths = p
				}
			}
		}
		fmt.Printf("tree-td(%.1f)   %9.3f %10.2f %8d %8d\n", limit,
			treegion.Speedup(base.Time, res.Time), res.CodeExpansion, maxPaths, merged)
	}
}
