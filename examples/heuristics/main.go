// The heuristics example compares the paper's four treegion scheduling
// heuristics (Section 3) on one benchmark and both machine models — a
// single-benchmark slice of Figure 8. On the gcc-flavoured benchmark the
// exit-count heuristic visibly trails global weight: its wide, shallow
// multiway-branch treegions give cold branch destinations high exit counts
// (the paper's Figure 9 pathology).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"treegion"
)

func main() {
	bench := flag.String("bench", "gcc", "benchmark to compile")
	flag.Parse()

	prog, err := treegion.GenerateBenchmark(*bench)
	if err != nil {
		log.Fatal(err)
	}
	profs, err := treegion.ProfileProgram(prog)
	if err != nil {
		log.Fatal(err)
	}
	base, err := treegion.Compile(context.Background(), prog, profs, treegion.BaselineConfig())
	if err != nil {
		log.Fatal(err)
	}

	heuristics := []treegion.Heuristic{
		treegion.DepHeight, treegion.ExitCount,
		treegion.GlobalWeight, treegion.WeightedCount,
	}
	fmt.Printf("%s: speedup over 1-issue basic-block scheduling\n", prog.Name)
	fmt.Printf("%-15s %8s %8s\n", "heuristic", "4U", "8U")
	for _, h := range heuristics {
		var row [2]float64
		for i, m := range []treegion.Machine{treegion.FourU, treegion.EightU} {
			cfg := treegion.Config{
				Kind: treegion.Treegion, Heuristic: h, Machine: m, Rename: true,
			}
			res, err := treegion.Compile(context.Background(), prog, profs, cfg)
			if err != nil {
				log.Fatal(err)
			}
			row[i] = treegion.Speedup(base.Time, res.Time)
		}
		fmt.Printf("%-15s %8.3f %8.3f\n", h, row[0], row[1])
	}
}
