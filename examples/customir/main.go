// The customir example shows the textual IR workflow: write a function by
// hand (here: the paper's Figure 1 CFG from testdata/fig1.tir), parse it
// through the public API, profile and compile it under every region former,
// and print the comparison — a miniature version of the paper's entire
// methodology applied to one user-supplied program.
package main

import (
	"fmt"
	"log"
	"os"

	"treegion"
)

func main() {
	path := "testdata/fig1.tir"
	if len(os.Args) > 1 {
		path = os.Args[1]
	}
	src, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fn, err := treegion.ParseFunction(string(src))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %q: %d blocks, %d ops\n\n", fn.Name, len(fn.Blocks), fn.NumOps())

	prof, err := treegion.ProfileFunction(fn, 1, 1000)
	if err != nil {
		log.Fatal(err)
	}

	compile := func(kind treegion.RegionKind, rename bool) float64 {
		cfg := treegion.Config{
			Kind: kind, Heuristic: treegion.GlobalWeight, Machine: treegion.FourU,
			Rename: rename, DominatorParallelism: kind == treegion.TreegionTD,
			TD: treegion.TDConfig{ExpansionLimit: 2.0, PathLimit: 20, MergeLimit: 4},
		}
		res, err := treegion.CompileFunction(fn.Clone(), prof.Clone(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res.Time
	}

	base := compile(treegion.BasicBlocks, true)
	fmt.Printf("%-12s %12s %10s\n", "regions", "cycles", "speedup")
	for _, k := range []treegion.RegionKind{
		treegion.BasicBlocks, treegion.SLR, treegion.Superblock,
		treegion.Treegion, treegion.TreegionTD,
	} {
		tm := compile(k, k != treegion.Superblock)
		fmt.Printf("%-12s %12.0f %9.2fx\n", k, tm, base/tm)
	}
}
