// The paperfigure example reproduces the paper's worked example
// (Figures 1, 4 and 5). The topmost part of the Figure 1 CFG is scheduled
// two ways on the 4-issue machine:
//
//   - as the paper's Figure 4 superblock: the hot trace (bb1, bb2, bb3)
//     plus separate regions for bb4 and bb8, with restricted speculation;
//   - as the paper's Figure 5 treegion: one region covering bb1, bb2, bb3,
//     bb4 and bb8, with renaming enabling speculation from both sides of
//     the bb2 branch (the r4a/r5a registers of Figure 5).
//
// The estimated execution times follow the paper's accounting (profile
// weight × per-path schedule height; 35/25/40 path weights), and the
// treegion schedule comes out faster, as in the paper (500 vs 525 cycles
// there; absolute values differ here because our machine model keeps the
// 2-cycle load latency the paper's evaluation uses, while its illustrative
// figures assumed unit latency).
package main

import (
	"fmt"
	"log"

	"treegion/internal/cfg"
	"treegion/internal/core"
	"treegion/internal/ddg"
	"treegion/internal/eval"
	"treegion/internal/ir"
	"treegion/internal/machine"
	"treegion/internal/profile"
	"treegion/internal/region"
	"treegion/internal/sched"
)

// fig1 builds the Figure 1 CFG with the ops of Figures 4/5. Paper block
// bbN is our bb(N-1); comments use the paper's numbering.
func fig1() (*ir.Function, *profile.Data) {
	f := ir.NewFunction("fig1")
	bb := make([]*ir.Block, 9)
	for i := range bb {
		bb[i] = f.NewBlock()
	}
	rA, rB := f.NewReg(ir.ClassGPR), f.NewReg(ir.ClassGPR)
	r1, r2, r3 := f.NewReg(ir.ClassGPR), f.NewReg(ir.ClassGPR), f.NewReg(ir.ClassGPR)
	r4, r5, r6 := f.NewReg(ir.ClassGPR), f.NewReg(ir.ClassGPR), f.NewReg(ir.ClassGPR)
	r100 := f.NewReg(ir.ClassGPR)
	p1, p3 := f.NewReg(ir.ClassPred), f.NewReg(ir.ClassPred)

	// bb1: r1 = LD(A); r2 = LD(B); p1 = CMPP(r1 > r2); BRCT bb8 (p1)
	f.EmitMovI(bb[0], rA, 1000)
	f.EmitMovI(bb[0], rB, 2000)
	f.EmitLd(bb[0], r1, rA, 0)
	f.EmitLd(bb[0], r2, rB, 0)
	f.EmitCmpp(bb[0], p1, ir.NoReg, ir.CondGT, r1, r2)
	b8 := f.NewReg(ir.ClassBTR)
	f.EmitPbr(bb[0], b8, bb[7].ID)
	f.EmitBrct(bb[0], b8, p1, bb[7].ID, 0.35)
	bb[0].FallThrough = bb[1].ID

	// bb2: r3 = r1 + r2; p3 = CMPP(r3 < 100); BRCT bb4 (p3)
	f.EmitMovI(bb[1], r100, 100)
	f.EmitALU(bb[1], ir.Add, r3, r1, r2)
	f.EmitCmpp(bb[1], p3, ir.NoReg, ir.CondLT, r3, r100)
	b4 := f.NewReg(ir.ClassBTR)
	f.EmitPbr(bb[1], b4, bb[3].ID)
	f.EmitBrct(bb[1], b4, p3, bb[3].ID, 0.25/0.65)
	bb[1].FallThrough = bb[2].ID

	// bb3: r4 = 1; r5 = 2
	f.EmitMovI(bb[2], r4, 1)
	f.EmitMovI(bb[2], r5, 2)
	bb[2].FallThrough = bb[4].ID

	// bb4: r4 = 3; r5 = 4
	f.EmitMovI(bb[3], r4, 3)
	f.EmitMovI(bb[3], r5, 4)
	bb[3].FallThrough = bb[4].ID

	// bb5: r6 = 0; branch bb6 / fall bb7
	f.EmitMovI(bb[4], r6, 0)
	p5 := f.NewReg(ir.ClassPred)
	f.EmitCmpp(bb[4], p5, ir.NoReg, ir.CondGT, r4, r5)
	f.EmitBrct(bb[4], ir.NoReg, p5, bb[5].ID, 0.5)
	bb[4].FallThrough = bb[6].ID

	// bb6, bb7: use r4/r5, meet at bb9.
	f.EmitSt(bb[5], rA, 8, r4)
	bb[5].FallThrough = bb[8].ID
	f.EmitSt(bb[6], rA, 16, r5)
	bb[6].FallThrough = bb[8].ID

	// bb8: r6 = 5
	f.EmitMovI(bb[7], r6, 5)
	bb[7].FallThrough = bb[8].ID

	// bb9: consumes r6 and returns.
	f.EmitSt(bb[8], rB, 8, r6)
	f.EmitRet(bb[8])

	if err := f.Validate(); err != nil {
		log.Fatal(err)
	}

	// The paper's profile: 100 trips; 35 take bb8, 25 take bb4, 40 fall bb3.
	prof := profile.New()
	for _, w := range []struct {
		b ir.BlockID
		v float64
	}{
		{0, 100}, {1, 65}, {2, 40}, {3, 25}, {4, 65},
		{5, 32}, {6, 33}, {7, 35}, {8, 100},
	} {
		prof.AddBlock(w.b, w.v)
	}
	for _, e := range []struct {
		f, t ir.BlockID
		v    float64
	}{
		{0, 7, 35}, {0, 1, 65}, {1, 3, 25}, {1, 2, 40},
		{2, 4, 40}, {3, 4, 25}, {4, 5, 32}, {4, 6, 33},
		{5, 8, 32}, {6, 8, 33}, {7, 8, 35},
	} {
		prof.AddEdge(e.f, e.t, e.v)
	}
	return f, prof
}

// schedule builds, schedules and measures one region.
func schedule(fn *ir.Function, prof *profile.Data, r *region.Region, rename bool) (*sched.Schedule, float64) {
	lv := cfg.ComputeLiveness(cfg.New(fn))
	g, err := ddg.Build(fn, r, ddg.Options{Rename: rename, Liveness: lv, Profile: prof})
	if err != nil {
		log.Fatal(err)
	}
	s := sched.ListSchedule(g, machine.FourU, core.GlobalWeight.Keys)
	if err := s.Verify(); err != nil {
		log.Fatal(err)
	}
	t := eval.MeasureRegion(s, prof, lv)
	return s, t.Time
}

func main() {
	// --- Figure 4: the superblock setup — hot trace (bb1,bb2,bb3) plus
	// separate bb4 and bb8 sections, restricted speculation. ---
	fnSB, profSB := fig1()
	trace := region.New(fnSB, region.KindSuperblock, 0)
	trace.Add(1, 0)
	trace.Add(2, 1)
	sbTotal := 0.0
	fmt.Println("=== Figure 4: superblock schedule (trace bb1-bb2-bb3 + bb4, bb8 sections) ===")
	for _, r := range []*region.Region{
		trace,
		region.New(fnSB, region.KindSuperblock, 3),
		region.New(fnSB, region.KindSuperblock, 7),
	} {
		s, t := schedule(fnSB, profSB, r, false)
		fmt.Printf("-- %v (%.0f weighted cycles)\n%s", r, t, s)
		sbTotal += t
	}
	fmt.Printf("estimated execution time of the compared code: %.0f cycles\n\n", sbTotal)

	// --- Figure 5: the treegion — formation covers bb1,bb2,bb3,bb4,bb8 in
	// one region; renaming produces the paper's r4a/r5a registers. ---
	fnT, profT := fig1()
	regions := core.Form(fnT, cfg.New(fnT))
	var top *region.Region
	for _, r := range regions {
		if r.Root == 0 {
			top = r
		}
	}
	fmt.Println("=== Figure 5: treegion schedule (bb1,bb2,bb3,bb4,bb8 as one region) ===")
	s, treeTotal := schedule(fnT, profT, top, true)
	fmt.Printf("-- %v\n%s", top, s)
	renamed := 0
	for _, b := range top.Blocks {
		for _, op := range fnT.Block(b).Ops {
			if op.Renamed {
				renamed++
			}
		}
	}
	fmt.Printf("estimated execution time of the compared code: %.0f cycles\n", treeTotal)
	fmt.Printf("renamed ops: %d (the paper's r4a = 3 / r5a = 4 in Figure 5)\n\n", renamed)

	switch {
	case treeTotal < sbTotal:
		fmt.Printf("treegion wins by %.0f cycles — the paper's Figures 4/5 result (525 vs 500 there)\n",
			sbTotal-treeTotal)
	default:
		fmt.Println("unexpected: treegion not faster on the worked example")
	}
}
