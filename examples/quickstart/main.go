// The quickstart example walks the library's public API end to end:
// generate a synthetic benchmark, profile it, compile it with the paper's
// best configuration (treegions + global weight), and report the speedup
// over the basic-block baseline.
package main

import (
	"context"
	"fmt"
	"log"

	"treegion"
)

func main() {
	// 1. A deterministic synthetic benchmark (compress-flavoured).
	prog, err := treegion.GenerateBenchmark("compress")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %q: %d functions\n", prog.Name, len(prog.Funcs))

	// 2. Profile it with the stochastic interpreter.
	profs, err := treegion.ProfileProgram(prog)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Compile with the paper's headline configuration...
	cfg := treegion.DefaultConfig() // treegions, global weight, 4-issue
	res, err := treegion.Compile(context.Background(), prog, profs, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// ...and with the baseline (basic blocks on the 1-issue machine).
	base, err := treegion.Compile(context.Background(), prog, profs, treegion.BaselineConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 4. Report.
	fmt.Printf("baseline time: %.0f cycles\n", base.Time)
	fmt.Printf("treegion time: %.0f cycles on %s\n", res.Time, cfg.Machine.Name)
	fmt.Printf("speedup:       %.2fx\n", treegion.Speedup(base.Time, res.Time))
	fmt.Printf("region stats:  %d regions, %.2f blocks and %.2f ops on average\n",
		res.RegionStats.Count, res.RegionStats.AvgBlocks, res.RegionStats.AvgOps)

	renamed, speculated := 0, 0
	for _, f := range res.Funcs {
		renamed += f.NumRenamed
		speculated += f.NumSpeculated
	}
	fmt.Printf("speculated ops: %d, renamed destinations: %d\n", speculated, renamed)
}
