package treegion

// Micro-benchmarks for the three rebuilt hot phases of the compiler core —
// bitset liveness, slab DDG construction, and heap-based list scheduling —
// each driven cold over every function of the 8-benchmark suite. They
// isolate one phase per iteration, so a regression in (say) the scheduler's
// ready queue shows up here before it moves the whole-pipeline
// BenchmarkCompileSuiteSerial number. `make bench` captures them in
// BENCH_5.json; `make check` runs them once under the race detector.

import (
	"testing"

	"treegion/internal/cfg"
	"treegion/internal/core"
	"treegion/internal/ddg"
	"treegion/internal/ir"
	"treegion/internal/machine"
	"treegion/internal/region"
	"treegion/internal/sched"
)

// hotFunc is one suite function prepared up to the phase under test.
type hotFunc struct {
	fn      *ir.Function
	regions []*region.Region
	lv      *cfg.Liveness
}

// BenchmarkColdCompileLiveness measures the bitset dataflow phase exactly as
// the compile path runs it: CFG construction plus iterate-to-fixpoint
// liveness for every function of the suite.
func BenchmarkColdCompileLiveness(b *testing.B) {
	s := sharedSuite(b)
	var fns []*ir.Function
	for _, p := range s.Programs {
		for _, fn := range p.Funcs {
			fns = append(fns, fn.Clone())
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range fns {
			lv := cfg.ComputeLiveness(cfg.New(f))
			if len(lv.LiveIn) == 0 {
				b.Fatal("empty liveness")
			}
		}
	}
}

// BenchmarkColdCompileDDG measures slab DDG construction — dominator
// parallelism off, renaming on, the headline configuration — over every
// region of the suite. Renaming mutates the function, so each iteration
// rebuilds its inputs outside the timed region.
func BenchmarkColdCompileDDG(b *testing.B) {
	s := sharedSuite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var prep []hotFunc
		for _, p := range s.Programs {
			for _, fn := range p.Funcs {
				f := fn.Clone()
				g := cfg.New(f)
				rs := core.Form(f, g)
				lv := cfg.ComputeLiveness(cfg.New(f))
				prep = append(prep, hotFunc{fn: f, regions: rs, lv: lv})
			}
		}
		b.StartTimer()
		for _, h := range prep {
			for _, r := range h.regions {
				if _, err := ddg.Build(h.fn, r, ddg.Options{Rename: true, Liveness: h.lv}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkColdCompileSched measures the heap-based list scheduler alone:
// DDGs are built once, then every iteration re-schedules all of them on the
// 4-issue machine with the dependence-height heuristic. Scheduling never
// mutates the graph, so the prepared inputs are reusable.
func BenchmarkColdCompileSched(b *testing.B) {
	s := sharedSuite(b)
	var graphs []*ddg.Graph
	for _, p := range s.Programs {
		for _, fn := range p.Funcs {
			f := fn.Clone()
			g := cfg.New(f)
			lv := cfg.ComputeLiveness(cfg.New(f))
			for _, r := range core.Form(f, g) {
				dg, err := ddg.Build(f, r, ddg.Options{Rename: true, Liveness: lv})
				if err != nil {
					b.Fatal(err)
				}
				graphs = append(graphs, dg)
			}
		}
	}
	prio := core.DepHeight.Keys
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range graphs {
			sc := sched.ListSchedule(g, machine.FourU, prio)
			if sc.Length == 0 && len(g.Nodes) > 0 {
				b.Fatal("empty schedule")
			}
		}
	}
}
