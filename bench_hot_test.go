package treegion

// Micro-benchmarks for the three rebuilt hot phases of the compiler core —
// bitset liveness, slab DDG construction, and heap-based list scheduling —
// each driven cold over every function of the 8-benchmark suite. They
// isolate one phase per iteration, so a regression in (say) the scheduler's
// ready queue shows up here before it moves the whole-pipeline
// BenchmarkCompileSuiteSerial number. `make bench` captures them in
// BENCH_5.json; `make check` runs them once under the race detector.

import (
	"math"
	"testing"
	"time"

	"treegion/internal/cfg"
	"treegion/internal/core"
	"treegion/internal/ddg"
	"treegion/internal/ir"
	"treegion/internal/machine"
	"treegion/internal/region"
	"treegion/internal/sched"
)

// hotFunc is one suite function prepared up to the phase under test.
type hotFunc struct {
	fn      *ir.Function
	regions []*region.Region
	lv      *cfg.Liveness
}

// BenchmarkColdCompileLiveness measures the bitset dataflow phase exactly as
// the compile path runs it: CFG construction plus iterate-to-fixpoint
// liveness for every function of the suite.
func BenchmarkColdCompileLiveness(b *testing.B) {
	s := sharedSuite(b)
	var fns []*ir.Function
	for _, p := range s.Programs {
		for _, fn := range p.Funcs {
			fns = append(fns, fn.Clone())
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range fns {
			lv := cfg.ComputeLiveness(cfg.New(f))
			if len(lv.LiveIn) == 0 {
				b.Fatal("empty liveness")
			}
		}
	}
}

// BenchmarkColdCompileDDG measures slab DDG construction — dominator
// parallelism off, renaming on, the headline configuration — over every
// region of the suite. Renaming mutates the function, so each iteration
// rebuilds its inputs outside the timed region.
func BenchmarkColdCompileDDG(b *testing.B) {
	s := sharedSuite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var prep []hotFunc
		for _, p := range s.Programs {
			for _, fn := range p.Funcs {
				f := fn.Clone()
				g := cfg.New(f)
				rs := core.Form(f, g)
				lv := cfg.ComputeLiveness(cfg.New(f))
				prep = append(prep, hotFunc{fn: f, regions: rs, lv: lv})
			}
		}
		b.StartTimer()
		for _, h := range prep {
			for _, r := range h.regions {
				if _, err := ddg.Build(h.fn, r, ddg.Options{Rename: true, Liveness: h.lv}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// schedGraphs builds every region DDG of progs, prepared exactly as the
// compile path prepares them. Scheduling never mutates the graph, so the
// result is reusable across benchmark iterations.
func schedGraphs(b *testing.B, progs []*Program) []*ddg.Graph {
	b.Helper()
	var graphs []*ddg.Graph
	for _, p := range progs {
		for _, fn := range p.Funcs {
			f := fn.Clone()
			g := cfg.New(f)
			lv := cfg.ComputeLiveness(cfg.New(f))
			for _, r := range core.Form(f, g) {
				dg, err := ddg.Build(f, r, ddg.Options{Rename: true, Liveness: lv})
				if err != nil {
					b.Fatal(err)
				}
				graphs = append(graphs, dg)
			}
		}
	}
	return graphs
}

// BenchmarkColdCompileSched measures the list scheduler alone: DDGs are
// built once, then every iteration re-schedules all of them on the 4-issue
// machine with the dependence-height heuristic. Three tiers scale the rank
// space — suite regions top out near 170 nodes, stress near 170 with far
// more regions, and stress2's straight-line giants push past 4096 — so the
// asymptotic gap between the bitmap queues and the retained heap reference
// is visible, not just the constant factor. Each tier reports
// speedup-vs-heap, computed symmetrically as best-of-three heap passes over
// best-of-three bitmap passes: best-of filters GC pauses (the per-region
// Schedule allocations churn enough to swamp a mean on a busy machine), and
// measuring both sides the same way keeps the ratio honest.
func BenchmarkColdCompileSched(b *testing.B) {
	tiers := []struct {
		name  string
		progs func(b *testing.B) []*Program
	}{
		{"suite", func(b *testing.B) []*Program { return sharedSuite(b).Programs }},
		{"stress", func(b *testing.B) []*Program { return benchProgram(b, "stress") }},
		{"stress2", func(b *testing.B) []*Program { return benchProgram(b, "stress2") }},
	}
	prio := core.DepHeight.Keys
	for _, tier := range tiers {
		b.Run(tier.name, func(b *testing.B) {
			graphs := schedGraphs(b, tier.progs(b))
			var sc sched.Scratch
			schedule := func(fn func(g *ddg.Graph) *sched.Schedule) {
				for _, g := range graphs {
					if s := fn(g); s.Length == 0 && len(g.Nodes) > 0 {
						b.Fatal("empty schedule")
					}
				}
			}
			var hsc sched.Scratch
			heapPass := func(g *ddg.Graph) *sched.Schedule {
				return sched.ListScheduleHeapRefScratch(g, machine.FourU, prio, &hsc)
			}
			bitmapPass := func(g *ddg.Graph) *sched.Schedule {
				return sched.ListScheduleScratch(g, machine.FourU, prio, nil, &sc)
			}
			bestOf := func(fn func(g *ddg.Graph) *sched.Schedule) float64 {
				schedule(fn) // warm scratch
				best := math.Inf(1)
				for pass := 0; pass < 3; pass++ {
					start := time.Now()
					schedule(fn)
					if ns := float64(time.Since(start).Nanoseconds()); ns < best {
						best = ns
					}
				}
				return best
			}
			heapNs := bestOf(heapPass)
			bitmapNs := bestOf(bitmapPass)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				schedule(bitmapPass)
			}
			b.StopTimer()
			b.ReportMetric(heapNs/bitmapNs, "speedup-vs-heap")
		})
	}
}

// benchProgram generates one named progen benchmark for a stress tier.
func benchProgram(b *testing.B, name string) []*Program {
	b.Helper()
	p, err := GenerateBenchmark(name)
	if err != nil {
		b.Fatal(err)
	}
	return []*Program{p}
}
