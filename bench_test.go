package treegion

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each benchmark regenerates its experiment over the synthetic suite and
// reports the headline aggregate through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the reproduction's numbers next to the usual ns/op. The full
// per-benchmark rows come from `go run ./cmd/experiments`.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

var (
	suiteOnce sync.Once
	suite     *Suite
	suiteErr  error
)

func sharedSuite(b *testing.B) *Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = NewSuite()
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

// BenchmarkTable1TreegionStats regenerates Table 1 (treegion statistics).
func BenchmarkTable1TreegionStats(b *testing.B) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		avgBB, avgOps := 0.0, 0.0
		for _, r := range rows {
			avgBB += r.AvgBlocks
			avgOps += r.AvgOps
		}
		b.ReportMetric(avgBB/float64(len(rows)), "avg-bb")
		b.ReportMetric(avgOps/float64(len(rows)), "avg-ops")
	}
}

// BenchmarkTable2SLRStats regenerates Table 2 (SLR statistics).
func BenchmarkTable2SLRStats(b *testing.B) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		avgBB, avgOps := 0.0, 0.0
		for _, r := range rows {
			avgBB += r.AvgBlocks
			avgOps += r.AvgOps
		}
		b.ReportMetric(avgBB/float64(len(rows)), "avg-bb")
		b.ReportMetric(avgOps/float64(len(rows)), "avg-ops")
	}
}

// BenchmarkTable3CodeExpansion regenerates Table 3 (code expansion for
// superblocks and tail-duplicated treegions at limits 2.0 and 3.0).
func BenchmarkTable3CodeExpansion(b *testing.B) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Table3()
		if err != nil {
			b.Fatal(err)
		}
		var sb, t2, t3 float64
		for _, r := range rows {
			sb += r.SB
			t2 += r.Tree20
			t3 += r.Tree30
		}
		n := float64(len(rows))
		b.ReportMetric(sb/n, "sb-expansion")
		b.ReportMetric(t2/n, "tree2.0-expansion")
		b.ReportMetric(t3/n, "tree3.0-expansion")
	}
}

// BenchmarkTable4RegionSizes regenerates Table 4 (superblock vs treegion
// region counts and sizes at expansion limit 2.0).
func BenchmarkTable4RegionSizes(b *testing.B) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Table4()
		if err != nil {
			b.Fatal(err)
		}
		var sbBB, treeBB float64
		for _, r := range rows {
			sbBB += r.SBAvgBB
			treeBB += r.TreeAvgBB
		}
		n := float64(len(rows))
		b.ReportMetric(sbBB/n, "sb-avg-bb")
		b.ReportMetric(treeBB/n, "tree-avg-bb")
	}
}

// BenchmarkFig6DepHeight regenerates Figure 6 (dependence-height scheduling
// of basic blocks, SLRs and treegions on 4U and 8U).
func BenchmarkFig6DepHeight(b *testing.B) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		rows, labels, err := s.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		for _, l := range labels {
			b.ReportMetric(GeoMean(rows, l), l)
		}
	}
}

// BenchmarkFig8Heuristics regenerates Figure 8 (the four treegion
// scheduling heuristics on 4U and 8U).
func BenchmarkFig8Heuristics(b *testing.B) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		rows, labels, err := s.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		for _, l := range labels {
			b.ReportMetric(GeoMean(rows, l), l)
		}
	}
}

// BenchmarkFig13TailDup regenerates Figure 13 (superblocks vs
// tail-duplicated treegions with global weight and dominator parallelism).
func BenchmarkFig13TailDup(b *testing.B) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		rows, labels, err := s.Figure13()
		if err != nil {
			b.Fatal(err)
		}
		for _, l := range labels {
			b.ReportMetric(GeoMean(rows, l), l)
		}
	}
}

// BenchmarkProfileVariation runs the paper's future-work study: schedules
// built from the training profile evaluated against a varied input set.
func BenchmarkProfileVariation(b *testing.B) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		rows, _, err := s.ProfileVariation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(GeoMean(rows, "globalweight/train"), "gw-train")
		b.ReportMetric(GeoMean(rows, "globalweight/varied"), "gw-varied")
		b.ReportMetric(GeoMean(rows, "depheight/varied"), "dh-varied")
	}
}

// BenchmarkWideMachines extends Figure 6 to the 16-issue model (speculation
// headroom).
func BenchmarkWideMachines(b *testing.B) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		rows, labels, err := s.WideMachines()
		if err != nil {
			b.Fatal(err)
		}
		for _, l := range labels {
			b.ReportMetric(GeoMean(rows, l), l)
		}
	}
}

// BenchmarkAblations quantifies renaming, dominator parallelism, and the
// expansion-limit sweep.
func BenchmarkAblations(b *testing.B) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		rows, labels, err := s.Ablations()
		if err != nil {
			b.Fatal(err)
		}
		for _, l := range labels {
			b.ReportMetric(GeoMean(rows, l), l)
		}
	}
}

// BenchmarkHyperblocks runs the predication-vs-tail-duplication comparison
// the paper names as future work.
func BenchmarkHyperblocks(b *testing.B) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		rows, labels, err := s.Hyperblocks()
		if err != nil {
			b.Fatal(err)
		}
		for _, l := range labels {
			b.ReportMetric(GeoMean(rows, l), l)
		}
	}
}

// BenchmarkCompileTreegion measures raw compilation throughput of the
// treegion pipeline on the gcc-flavoured benchmark (not a paper figure;
// useful for tracking the compiler's own speed).
func BenchmarkCompileTreegion(b *testing.B) {
	prog, err := GenerateBenchmark("gcc")
	if err != nil {
		b.Fatal(err)
	}
	profs, err := ProfileProgram(prog)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(context.Background(), prog, profs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// compileSuite compiles all eight benchmarks under the paper's headline
// configuration with the given pipeline options.
func compileSuite(b *testing.B, s *Suite, opts ...CompileOption) {
	b.Helper()
	cfg := DefaultConfig()
	for i := range s.Programs {
		if _, err := Compile(context.Background(), s.Programs[i], s.Profiles[i], cfg, opts...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileSuiteSerial is the 1-worker, no-cache reference point for
// BenchmarkCompileSuiteParallel: the whole 8-benchmark suite compiled the
// way the seed did it.
func BenchmarkCompileSuiteSerial(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compileSuite(b, s, WithWorkers(1))
	}
}

// serialSuiteSeconds measures one serial (1-worker) pass over the suite,
// the reference for the speedup-vs-serial metric. Measured once per
// process: the parallel sub-benchmarks all compare against the same
// baseline.
var (
	serialRefOnce sync.Once
	serialRefSecs float64
)

func serialSuiteSeconds(b *testing.B, s *Suite) float64 {
	b.Helper()
	serialRefOnce.Do(func() {
		const passes = 3
		start := time.Now()
		for i := 0; i < passes; i++ {
			compileSuite(b, s, WithWorkers(1))
		}
		serialRefSecs = time.Since(start).Seconds() / passes
	})
	return serialRefSecs
}

// BenchmarkCompileSuiteParallel compiles the 8-benchmark suite on the
// batched work-stealing pool at several worker counts and reports each
// run's wall-clock ratio over the serial baseline. The workers=1 sub-bench
// takes compileMany's serial fast path — no goroutine, no steal queue — so
// it ties the baseline by construction; its metric is labelled serial-tie
// rather than speedup-vs-serial so the regression gate reads it as a
// dispatch-overhead check, not a parallel loss. The parallel metrics are
// honest about the hardware: the ≥2x numbers need ≥2 real cores.
func BenchmarkCompileSuiteParallel(b *testing.B) {
	s := sharedSuite(b)
	serial := serialSuiteSeconds(b, s)
	counts := []int{1, 2, runtime.NumCPU()}
	if counts[2] <= counts[1] {
		counts = counts[:2]
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			metric := "speedup-vs-serial"
			if workers == 1 {
				metric = "serial-tie"
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				compileSuite(b, s, WithWorkers(workers))
			}
			b.StopTimer()
			perOp := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(serial/perOp, metric)
		})
	}
}

// BenchmarkCompileStress compiles the out-of-suite stress preset (24
// functions, ~7000 ops each — an order of magnitude past the largest suite
// benchmark) at 8 workers, reporting speedup-vs-serial against a 1-worker
// pass over the same program. This is the scale-out headline number: large
// independent functions are the work-stealing pool's best case, and the
// per-worker arena reuse pays off most on functions this size.
func BenchmarkCompileStress(b *testing.B) {
	stressOnce.Do(func() {
		stressProg, stressErr = GenerateBenchmark("stress")
		if stressErr != nil {
			return
		}
		stressProfs, stressErr = ProfileProgram(stressProg)
	})
	if stressErr != nil {
		b.Fatal(stressErr)
	}
	cfg := DefaultConfig()
	compileStress := func(workers int) {
		if _, err := Compile(context.Background(), stressProg, stressProfs, cfg, WithWorkers(workers)); err != nil {
			b.Fatal(err)
		}
	}
	start := time.Now()
	compileStress(1)
	serial := time.Since(start).Seconds()

	b.Run("workers=8", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			compileStress(8)
		}
		b.StopTimer()
		perOp := b.Elapsed().Seconds() / float64(b.N)
		b.ReportMetric(serial/perOp, "speedup-vs-serial")
	})
}

var (
	stressOnce  sync.Once
	stressProg  *Program
	stressProfs Profiles
	stressErr   error
)

// BenchmarkCompileSuiteVerified compiles the suite on the full worker pool
// with the static schedule verifier on, measuring the cost of proving every
// emitted schedule legal. Compare against BenchmarkCompileSuiteParallel.
func BenchmarkCompileSuiteVerified(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compileSuite(b, s, WithVerify())
	}
}

// BenchmarkCompileSuiteParallelCached adds the content-addressed result
// cache: every iteration after the first is pure cache hits, and the
// reported hit rate must be > 0 on any second pass.
func BenchmarkCompileSuiteParallelCached(b *testing.B) {
	s := sharedSuite(b)
	cache := NewCompileCache(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compileSuite(b, s, WithCache(cache))
	}
	b.StopTimer()
	st := cache.Stats()
	b.ReportMetric(st.HitRate(), "hit-rate")
	if b.N > 1 && st.HitRate() <= 0 {
		b.Fatalf("hit rate = %v on repeated passes, want > 0", st.HitRate())
	}
}

// BenchmarkCompileSuiteWarmStore measures a warm-start suite compile
// against a pre-populated persistent artifact store with a COLD memory
// cache: every function is decoded from disk instead of scheduled. This is
// the restart path a daemon with -store-dir takes, and the store-hit
// counter proves the scheduler never ran inside the timed region.
func BenchmarkCompileSuiteWarmStore(b *testing.B) {
	s := sharedSuite(b)
	dir := b.TempDir()
	seed, err := OpenArtifactStore(dir, 0)
	if err != nil {
		b.Fatal(err)
	}
	// Populate the store once, outside the timed region.
	warmCache := NewCompileCache(0)
	warmCache.SetL2(seed)
	compileSuite(b, s, WithCache(warmCache))
	if err := seed.Close(); err != nil {
		b.Fatal(err)
	}

	var m CompileMetrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := OpenArtifactStore(dir, 0) // fresh handle = fresh process
		if err != nil {
			b.Fatal(err)
		}
		cache := NewCompileCache(0) // cold memory tier every iteration
		cache.SetL2(st)
		b.StartTimer()
		compileSuite(b, s, WithCache(cache), WithMetrics(&m))
		b.StopTimer()
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.StopTimer()
	if got := m.Compiles.Load(); got != 0 {
		b.Fatalf("warm-store pass invoked the scheduler %d times, want 0", got)
	}
	b.ReportMetric(float64(m.StoreHits.Load())/float64(b.N), "store-hits/op")
}

// BenchmarkCompileSuiteVerifiedWarm is BenchmarkCompileSuiteWarmStore with
// the static verifier on: the store holds both the artifacts and the
// persisted verdicts, so a warm verifying pass decodes each artifact, finds
// its verdict by the same content key, and runs neither the scheduler nor
// the verifier. The cost over the plain warm benchmark is one verdict
// lookup per function — it must stay within a few percent.
func BenchmarkCompileSuiteVerifiedWarm(b *testing.B) {
	s := sharedSuite(b)
	dir := b.TempDir()
	seed, err := OpenArtifactStore(dir, 0)
	if err != nil {
		b.Fatal(err)
	}
	// Populate artifacts AND verdicts once, outside the timed region.
	warmCache := NewCompileCache(0)
	warmCache.SetL2(seed)
	compileSuite(b, s, WithCache(warmCache), WithVerify())
	if err := seed.Close(); err != nil {
		b.Fatal(err)
	}

	var m CompileMetrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := OpenArtifactStore(dir, 0) // fresh handle = fresh process
		if err != nil {
			b.Fatal(err)
		}
		cache := NewCompileCache(0) // cold memory tier every iteration
		cache.SetL2(st)
		b.StartTimer()
		compileSuite(b, s, WithCache(cache), WithMetrics(&m), WithVerify())
		b.StopTimer()
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.StopTimer()
	if got := m.Compiles.Load(); got != 0 {
		b.Fatalf("verified warm pass invoked the scheduler %d times, want 0", got)
	}
	if got := m.VerifyRuns.Load(); got != 0 {
		b.Fatalf("verified warm pass ran the verifier %d times, want 0 (verdicts are persisted)", got)
	}
	b.ReportMetric(float64(m.VerdictHits.Load())/float64(b.N), "verdict-hits/op")
}

// BenchmarkCompileSuiteInline compiles the two interprocedural presets
// (callhot: 90/10 hot-callee skew; calldeep: depth-3 chains) under the
// tail-duplicating former with inlining off and on. The off legs are the
// barrier-call baseline; the on legs time demand-driven inline-on-absorb
// end to end (splice + formation through the spliced body) and report the
// splice count and the speedup over the 1-issue basic-block baseline, the
// EXPERIMENTS.md inline table's headline numbers.
func BenchmarkCompileSuiteInline(b *testing.B) {
	for _, preset := range []string{"callhot", "calldeep"} {
		prog, err := GenerateBenchmark(preset)
		if err != nil {
			b.Fatal(err)
		}
		profs, err := ProfileProgram(prog)
		if err != nil {
			b.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Kind = TreegionTD
		base, err := Compile(context.Background(), prog, profs, BaselineConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, inl := range []bool{false, true} {
			mode := "off"
			opts := []CompileOption{}
			if inl {
				mode = "on"
				opts = append(opts, WithInline(DefaultInlineConfig()))
			}
			b.Run(fmt.Sprintf("%s/inline=%s", preset, mode), func(b *testing.B) {
				var res *ProgramResult
				for i := 0; i < b.N; i++ {
					res, err = Compile(context.Background(), prog, profs, cfg, opts...)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(Speedup(base.Time, res.Time), "speedup")
				b.ReportMetric(float64(res.Inline.Inlined), "splices")
			})
		}
	}
}
