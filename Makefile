# Build/verify entry points. `make ci` is the PR gate: vet + build + tests
# + the race detector over the concurrent pipeline, cache and daemon.

GO ?= go

.PHONY: all build vet lint test race bench check ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: go vet plus the schedule verifier over every example
# program, across all five region formers.
lint: vet
	$(GO) run ./cmd/treegion-lint -region all testdata/fig1.tir examples/tir/*.tir

test:
	$(GO) test ./...

# The compilation service is concurrent (worker pool, sharded cache,
# daemon); every PR must pass the race detector, not just the plain tests.
race:
	$(GO) test -race ./...

# Serial vs parallel vs cached vs verified vs warm-store suite compile
# (the service-mode headline), with allocation counts. The raw `go test
# -json` stream is captured in BENCH_4.json for machine comparison against
# earlier runs; the WarmStore variant measures restart-path decode-from-disk
# throughput against the persistent artifact store.
bench:
	$(GO) test -run XXX -bench 'BenchmarkCompileSuite' -benchmem -benchtime 3x -json . | tee BENCH_4.json

# check is the fast gate: lint + build + full tests, plus the race detector
# over the new concurrency-heavy subsystems (artifact store, job queue,
# singleflight cache, daemon endpoints).
check: lint build test
	$(GO) test -race ./internal/store/ ./internal/jobs/ ./internal/compcache/ ./cmd/treegiond/

# lint runs first and fails the gate on any finding.
ci: lint build test race
