# Build/verify entry points. `make ci` is the PR gate: vet + build + tests
# + the race detector over the concurrent pipeline, cache and daemon.

GO ?= go

.PHONY: all build vet test race bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The compilation service is concurrent (worker pool, sharded cache,
# daemon); every PR must pass the race detector, not just the plain tests.
race:
	$(GO) test -race ./...

# Serial vs parallel vs cached suite compile (the service-mode headline),
# with allocation counts. The raw `go test -json` stream is captured in
# BENCH_2.json for machine comparison against earlier runs.
bench:
	$(GO) test -run XXX -bench 'BenchmarkCompileSuite' -benchmem -benchtime 3x -json . | tee BENCH_2.json

# vet runs first and fails the gate on any finding.
ci: vet build test race
