# Build/verify entry points. `make ci` is the PR gate: vet + build + tests
# + the race detector over the concurrent pipeline, cache and daemon.

GO ?= go

.PHONY: all build vet lint test race bench bench-compare check ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: go vet plus the schedule verifier over every example
# program, across all five region formers.
lint: vet
	$(GO) run ./cmd/treegion-lint -region all testdata/fig1.tir examples/tir/*.tir

test:
	$(GO) test ./...

# The compilation service is concurrent (worker pool, sharded cache,
# daemon); every PR must pass the race detector, not just the plain tests.
race:
	$(GO) test -race ./...

# Suite compiles (serial/parallel/cached/verified/warm-store) plus the
# per-phase micro-benchmarks of the compiler core (liveness, DDG build,
# list scheduling), with allocation counts. The raw `go test -json` stream
# is captured in BENCH_5.json for machine comparison against earlier runs
# (BENCH_4.json holds the pre-overhaul baseline).
bench:
	$(GO) test -run XXX -bench 'BenchmarkCompileSuite|BenchmarkColdCompile' -benchmem -benchtime 3x -json . | tee BENCH_5.json

# bench-compare diffs two bench captures. benchstat is used when installed
# (fed plain text extracted from the JSON captures); otherwise the bundled
# dependency-free cmd/benchdiff prints the old/new/delta table. Override the
# endpoints with BENCH_OLD= / BENCH_NEW=.
BENCH_OLD ?= BENCH_4.json
BENCH_NEW ?= BENCH_5.json
bench-compare:
	@if command -v benchstat >/dev/null 2>&1; then \
		$(GO) run ./cmd/benchdiff -extract $(BENCH_OLD) > /tmp/benchdiff_old.txt; \
		$(GO) run ./cmd/benchdiff -extract $(BENCH_NEW) > /tmp/benchdiff_new.txt; \
		benchstat /tmp/benchdiff_old.txt /tmp/benchdiff_new.txt; \
	else \
		$(GO) run ./cmd/benchdiff $(BENCH_OLD) $(BENCH_NEW); \
	fi

# check is the fast gate: lint + build + full tests, plus the race detector
# over the concurrency-heavy subsystems (artifact store, job queue,
# singleflight cache, daemon endpoints) and one racing pass over the hot-path
# micro-benchmarks (the scheduler's sync.Pool scratch is shared across
# pipeline workers, so the bench bodies must be race-clean too).
check: lint build test
	$(GO) test -race ./internal/store/ ./internal/jobs/ ./internal/compcache/ ./cmd/treegiond/
	$(GO) test -race -run NONE -bench 'BenchmarkColdCompile' -benchtime 1x .

# lint runs first and fails the gate on any finding.
ci: lint build test race
