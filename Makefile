# Build/verify entry points. `make ci` is the PR gate: vet + build + tests
# + the race detector over the concurrent pipeline, cache and daemon.

GO ?= go

.PHONY: all build vet lint test race bench bench-compare check loadtest ci

all: build

build:
	$(GO) build ./...

# vet runs the toolchain's analyzers, then treegion-vet: the repo's own
# static-analysis suite over its determinism/atomicity/arena-escape/codec
# invariants (see internal/analysis and DESIGN.md §14). Any finding fails
# the target, and thereby lint, check and ci.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/treegion-vet ./...

# Static analysis: go vet + treegion-vet plus the schedule verifier over
# every example program, across all five region formers — once with calls
# as barriers, once with inline-on-absorb splicing them (the CL rules and
# call-executing SEM certification run in both passes).
lint: vet
	$(GO) run ./cmd/treegion-lint -region all testdata/fig1.tir examples/tir/*.tir
	$(GO) run ./cmd/treegion-lint -region all -inline examples/tir/*.tir

test:
	$(GO) test ./...

# The compilation service is concurrent (worker pool, sharded cache,
# daemon); every PR must pass the race detector, not just the plain tests.
race:
	$(GO) test -race ./...

# Suite compiles (serial/parallel/cached/verified/warm-store/verified-warm),
# the stress preset at 8 workers, the interprocedural presets with inlining
# off and on (BenchmarkCompileSuiteInline), plus the per-phase
# micro-benchmarks of the compiler core (liveness, DDG build, list
# scheduling), with allocation counts. The raw `go test -json` stream is
# captured in BENCH_8.json for machine comparison against earlier runs
# (BENCH_7.json holds the pre-interprocedural baseline). The parallel and
# stress benchmarks report speedup-vs-serial; on a single-core box that
# metric caps at ~1x by physics.
bench:
	$(GO) test -run XXX -bench 'BenchmarkCompileSuite|BenchmarkCompileStress|BenchmarkColdCompile' -benchmem -benchtime 3x -json . | tee BENCH_9.json

# bench-compare diffs two bench captures. benchstat is used when installed
# (fed plain text extracted from the JSON captures); otherwise the bundled
# dependency-free cmd/benchdiff prints the old/new/delta table. Override the
# endpoints with BENCH_OLD= / BENCH_NEW=.
BENCH_OLD ?= BENCH_8.json
BENCH_NEW ?= BENCH_9.json
bench-compare:
	@if command -v benchstat >/dev/null 2>&1; then \
		$(GO) run ./cmd/benchdiff -extract $(BENCH_OLD) > /tmp/benchdiff_old.txt; \
		$(GO) run ./cmd/benchdiff -extract $(BENCH_NEW) > /tmp/benchdiff_new.txt; \
		benchstat /tmp/benchdiff_old.txt /tmp/benchdiff_new.txt; \
	else \
		$(GO) run ./cmd/benchdiff $(BENCH_OLD) $(BENCH_NEW); \
	fi

# check is the fast gate: lint + build + full tests, plus the race detector
# over the concurrency-heavy subsystems (artifact store with its tgart2
# codec tests, job queue, singleflight cache, daemon endpoints, telemetry
# registry, and the eval.Arena/ddg.Scratch/sched.Scratch reuse paths that
# pipeline workers share through sync.Pool) and one racing pass over the
# hot-path micro-benchmarks (the scheduler's sync.Pool scratch is shared
# across pipeline workers, so the bench bodies must be race-clean too).
# The inliner and the call-executing interpreter race here because pipeline
# workers run splices concurrently across functions of one program.
# The eval -short slice includes TestVerifyStress2Slice, so one giant
# stress2 function races through compile-and-verify on every check; the
# sched line races the bitmap-queue unit and adversarial tests.
# The store and eval run with -short so their heavier matrices race a
# reduced preset slice; the full matrices run in `test`.
check: lint build test
	$(GO) test -race -short ./internal/store/ ./internal/eval/
	$(GO) test -race ./internal/jobs/ ./internal/compcache/ ./internal/pipeline/ ./internal/router/ ./cmd/treegiond/
	$(GO) test -race ./internal/telemetry/ ./internal/ddg/ ./internal/sched/
	$(GO) test -race ./internal/inline/ ./internal/interp/
	$(GO) test -race -run NONE -bench 'BenchmarkColdCompile' -benchtime 1x .

# loadtest boots the two-replica scale-out topology (2 treegiond + the
# shard router) and runs a short closed-loop loadgen pass against the
# router; non-zero exit if the error rate blows the budget.
loadtest: build
	./scripts/loadtest.sh

# lint runs first and fails the gate on any finding.
ci: lint build test race
